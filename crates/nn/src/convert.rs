//! ANN→SNN conversion (paper §V-A), adapted from Cao/Diehl/Rueckauer:
//! batch-norm folding, data-based threshold balancing, ReLU→IF
//! replacement and IF insertion after pooling layers.
//!
//! The key identity: a leak-free IF neuron with threshold 1 driven by
//! normalized inputs fires at a rate equal to the ReLU activation it
//! replaces. Normalization is achieved by scaling each weight layer by
//! `λ_prev / λ_this`, where `λ` are per-layer activation ceilings measured
//! on calibration data.

use crate::error::NnError;
use crate::layer::Layer;
use crate::network::Network;
use crate::optim::Dataset;
use crate::quant::calibrate_activations;
use crate::snn::{IfPopulation, InputEncoding, ResetMode, SnnStage, SpikingNetwork};

/// Configuration for ANN→SNN conversion.
#[derive(Debug, Clone, PartialEq)]
pub struct ConversionConfig {
    /// Percentile (0–1) of activations used as each layer's ceiling
    /// during threshold balancing (robust-max normalization).
    pub percentile: f64,
    /// IF reset behaviour.
    pub reset: ResetMode,
    /// Input spike encoding.
    pub encoding: InputEncoding,
    /// Scale of the raw input (1.0 for intensities already in `[0, 1]`).
    pub input_scale: f32,
}

impl Default for ConversionConfig {
    fn default() -> Self {
        Self {
            percentile: 0.999,
            reset: ResetMode::Subtract,
            encoding: InputEncoding::Poisson,
            input_scale: 1.0,
        }
    }
}

/// Folds every batch-norm layer into the preceding convolution, returning
/// a functionally identical BN-free network (paper §V-A, "Handling
/// Batch-Normalization Layers").
///
/// For a conv output channel `c` followed by BN with parameters
/// `(γ, β, μ, σ²)`: `W'_c = W_c · γ_c/√(σ²_c+ε)` and
/// `b'_c = γ_c·(b_c − μ_c)/√(σ²_c+ε) + β_c`.
///
/// # Errors
///
/// Returns [`NnError::UnsupportedTopology`] when a batch-norm layer does
/// not directly follow a (depthwise) convolution.
pub fn fold_batch_norm(net: &Network) -> Result<Network, NnError> {
    let mut out: Vec<Layer> = Vec::with_capacity(net.len());
    for layer in net.layers() {
        match layer {
            Layer::BatchNorm2d(bn) => {
                let prev = out.pop().ok_or_else(|| NnError::UnsupportedTopology {
                    reason: "batch-norm with no preceding layer".to_string(),
                })?;
                let folded = match prev {
                    Layer::Conv2d(mut conv) => {
                        fold_into(conv.weight.value.data_mut(), conv.bias.value.data_mut(), bn)?;
                        Layer::Conv2d(conv)
                    }
                    Layer::DepthwiseConv2d(mut conv) => {
                        fold_into(conv.weight.value.data_mut(), conv.bias.value.data_mut(), bn)?;
                        Layer::DepthwiseConv2d(conv)
                    }
                    other => {
                        return Err(NnError::UnsupportedTopology {
                            reason: format!(
                                "batch-norm must follow a convolution, found `{}`",
                                other.name()
                            ),
                        })
                    }
                };
                out.push(folded);
            }
            other => out.push(other.clone()),
        }
    }
    Ok(Network::new(out))
}

fn fold_into(
    weights: &mut [f32],
    bias: &mut [f32],
    bn: &crate::layer::BatchNorm2dLayer,
) -> Result<(), NnError> {
    let channels = bias.len();
    if bn.running_mean.len() != channels {
        return Err(NnError::UnsupportedTopology {
            reason: format!(
                "batch-norm over {} channels after a {}-channel convolution",
                bn.running_mean.len(),
                channels
            ),
        });
    }
    let per_channel = weights.len() / channels;
    for c in 0..channels {
        let inv_std = 1.0 / (bn.running_var[c] + bn.eps).sqrt();
        let g = bn.gamma.value.data()[c] * inv_std;
        for w in &mut weights[c * per_channel..(c + 1) * per_channel] {
            *w *= g;
        }
        bias[c] = g * (bias[c] - bn.running_mean[c]) + bn.beta.value.data()[c];
    }
    Ok(())
}

/// Converts a trained ANN into a [`SpikingNetwork`] using data-based
/// threshold balancing on `calib`.
///
/// The source network may contain batch-norm (folded automatically) and
/// [`Layer::ActivationQuant`] stages (their ceilings take precedence over
/// measured ones, so quantized networks convert consistently).
///
/// # Errors
///
/// Returns [`NnError::UnsupportedTopology`] for constructs an SNN cannot
/// express, plus any calibration errors.
///
/// # Examples
///
/// ```
/// use nebula_nn::{Layer, Network};
/// use nebula_nn::convert::{ann_to_snn, ConversionConfig};
/// use nebula_nn::optim::Dataset;
/// use nebula_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = Network::new(vec![
///     Layer::dense(4, 8, &mut rng),
///     Layer::relu(),
///     Layer::dense(8, 2, &mut rng),
/// ]);
/// let calib = Dataset::new(Tensor::rand_uniform(&[16, 4], 0.0, 1.0, &mut rng), vec![0; 16])?;
/// let snn = ann_to_snn(&net, &calib, &ConversionConfig::default())?;
/// assert_eq!(snn.if_layer_count(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn ann_to_snn(
    net: &Network,
    calib: &Dataset,
    config: &ConversionConfig,
) -> Result<SpikingNetwork, NnError> {
    let (stages, _boundary) = convert_prefix(net, calib, net.len(), config)?;
    Ok(SpikingNetwork::new(stages, config.encoding))
}

/// Converts the first `split_at` layers of `net` into SNN stages and
/// returns `(stages, boundary_scale)`, where `boundary_scale` is the
/// activation ceiling `λ` at the boundary — multiplying boundary spike
/// *rates* by it recovers ANN-domain activations (the job of NEBULA's
/// Accumulator Units in hybrid mode).
///
/// With `split_at == net.len()` this is a full conversion.
///
/// # Errors
///
/// Returns [`NnError::UnsupportedTopology`] for constructs an SNN cannot
/// express, plus any calibration errors.
pub fn convert_prefix(
    net: &Network,
    calib: &Dataset,
    split_at: usize,
    config: &ConversionConfig,
) -> Result<(Vec<SnnStage>, f32), NnError> {
    if net
        .layers()
        .iter()
        .any(|l| matches!(l, Layer::BatchNorm2d(_)))
    {
        let folded = fold_batch_norm(net)?;
        // Folding removes the BN layers, shifting every index after them:
        // translate the split point into the folded network's indexing.
        let bn_before_split = net.layers()[..split_at.min(net.len())]
            .iter()
            .filter(|l| matches!(l, Layer::BatchNorm2d(_)))
            .count();
        let folded_split = split_at.min(net.len()) - bn_before_split;
        return convert_prefix(&folded, calib, folded_split, config);
    }
    // Measure ceilings on the (BN-free) network.
    let mut work = net.clone();
    let measured = calibrate_activations(&mut work, calib, config.percentile)?;
    let layers = net.layers();

    // Effective ceiling at position i: an ActivationQuant right after a
    // ReLU pins the ceiling to its amax.
    let ceiling_at = |i: usize| -> Option<f32> {
        if !matches!(layers[i], Layer::Relu(_)) {
            return None;
        }
        if let Some(Layer::ActivationQuant(q)) = layers.get(i + 1) {
            return Some(q.amax);
        }
        measured.ceiling(i)
    };

    let mut stages = Vec::with_capacity(split_at + 4);
    let mut lambda_prev = config.input_scale;
    let mut i = 0usize;
    while i < split_at {
        match &layers[i] {
            l @ (Layer::Dense(_) | Layer::Conv2d(_) | Layer::DepthwiseConv2d(_)) => {
                // Find the ceiling of the next ReLU before the next weight
                // layer (and within the converted prefix).
                let mut lambda_next: Option<f32> = None;
                for (j, later) in layers.iter().enumerate().skip(i + 1).take(split_at - i - 1) {
                    if later.is_weight_layer() {
                        break;
                    }
                    if let Some(c) = ceiling_at(j) {
                        lambda_next = Some(c);
                        break;
                    }
                }
                let mut scaled = l.clone();
                match &mut scaled {
                    Layer::Dense(d) => scale_weight_layer(
                        d.weight.value.data_mut(),
                        d.bias.value.data_mut(),
                        lambda_prev,
                        lambda_next,
                    ),
                    Layer::Conv2d(c) => scale_weight_layer(
                        c.weight.value.data_mut(),
                        c.bias.value.data_mut(),
                        lambda_prev,
                        lambda_next,
                    ),
                    Layer::DepthwiseConv2d(c) => scale_weight_layer(
                        c.weight.value.data_mut(),
                        c.bias.value.data_mut(),
                        lambda_prev,
                        lambda_next,
                    ),
                    _ => unreachable!("matched weight layer above"),
                }
                stages.push(SnnStage::Synaptic(scaled));
            }
            Layer::Relu(_) => {
                if let Some(lambda) = ceiling_at(i) {
                    lambda_prev = lambda;
                }
                stages.push(SnnStage::IntegrateFire(IfPopulation::new(
                    1.0,
                    config.reset,
                )));
            }
            Layer::ActivationQuant(_) => { /* absorbed into the IF threshold scale */ }
            Layer::AvgPool(_) | Layer::Flatten(_) => {
                stages.push(SnnStage::Synaptic(layers[i].clone()));
                // The paper inserts an IF population after every pooling
                // layer so the whole network stays spike-coded.
                if matches!(layers[i], Layer::AvgPool(_)) {
                    stages.push(SnnStage::IntegrateFire(IfPopulation::new(
                        1.0,
                        config.reset,
                    )));
                }
            }
            Layer::BatchNorm2d(_) => {
                return Err(NnError::UnsupportedTopology {
                    reason: "batch-norm survived folding".to_string(),
                })
            }
        }
        i += 1;
    }
    Ok((stages, lambda_prev))
}

/// Applies the threshold-balancing weight transform:
/// `W ← W·λ_prev/λ_next`, `b ← b/λ_next` (output layers, with no
/// following ReLU, use `λ_next = 1` so accumulated potentials stay
/// proportional to the ANN logits).
fn scale_weight_layer(
    weights: &mut [f32],
    bias: &mut [f32],
    lambda_prev: f32,
    lambda_next: Option<f32>,
) {
    let lambda_next = lambda_next.unwrap_or(1.0);
    let w_scale = lambda_prev / lambda_next;
    let b_scale = 1.0 / lambda_next;
    for w in weights {
        *w *= w_scale;
    }
    for b in bias {
        *b *= b_scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{train, TrainConfig};
    use nebula_tensor::Tensor;
    use rand::Rng;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(33)
    }

    /// Two-class blobs with intensities in [0, 1] (SNN-friendly inputs).
    fn blobs01(n_per: usize, r: &mut rand::rngs::StdRng) -> Dataset {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..2 * n_per {
            let class = i % 2;
            let center = if class == 0 { 0.25 } else { 0.75 };
            data.push((center + r.gen_range(-0.15..0.15)) as f32);
            data.push((1.0 - center + r.gen_range(-0.15..0.15)) as f32);
            labels.push(class);
        }
        Dataset::new(Tensor::from_vec(data, &[2 * n_per, 2]).unwrap(), labels).unwrap()
    }

    #[test]
    fn bn_folding_preserves_inference_outputs() {
        let mut r = rng();
        let mut net = Network::new(vec![
            Layer::conv2d(1, 3, 3, 1, 1, &mut r),
            Layer::batch_norm2d(3),
            Layer::relu(),
        ]);
        // Push some data through in train mode to set running stats.
        for _ in 0..20 {
            let x = Tensor::rand_uniform(&[4, 1, 5, 5], 0.0, 2.0, &mut r);
            for l in net.layers_mut() {
                // chained forward in train mode
                let _ = l;
            }
            let mut h = x;
            for l in net.layers_mut() {
                h = l.forward(&h, true).unwrap();
            }
        }
        let mut folded = fold_batch_norm(&net).unwrap();
        assert_eq!(folded.len(), 2);
        let x = Tensor::rand_uniform(&[2, 1, 5, 5], 0.0, 2.0, &mut r);
        let y1 = net.forward(&x).unwrap();
        let y2 = folded.forward(&x).unwrap();
        for (a, b) in y1.data().iter().zip(y2.data()) {
            assert!((a - b).abs() < 1e-4, "folding changed output: {a} vs {b}");
        }
    }

    #[test]
    fn bn_folding_rejects_orphan_bn() {
        let net = Network::new(vec![Layer::batch_norm2d(2)]);
        assert!(fold_batch_norm(&net).is_err());
        let mut r = rng();
        let net2 = Network::new(vec![Layer::dense(2, 2, &mut r), Layer::batch_norm2d(2)]);
        assert!(fold_batch_norm(&net2).is_err());
    }

    #[test]
    fn converted_snn_matches_ann_accuracy_on_blobs() {
        let mut r = rng();
        let data = blobs01(50, &mut r);
        let mut net = Network::new(vec![
            Layer::dense(2, 16, &mut r),
            Layer::relu(),
            Layer::dense(16, 2, &mut r),
        ]);
        let cfg = TrainConfig::builder().epochs(30).batch_size(10).build();
        train(&mut net, &data, &cfg, &mut r).unwrap();
        let ann_acc = net.accuracy(&data.inputs, &data.labels).unwrap();
        assert!(ann_acc > 0.9, "ANN failed to train: {ann_acc}");

        let mut snn = ann_to_snn(&net, &data.take(40), &ConversionConfig::default()).unwrap();
        let snn_acc = snn
            .accuracy(&data.inputs, &data.labels, 200, &mut r)
            .unwrap();
        assert!(
            snn_acc >= ann_acc - 0.06,
            "conversion lost accuracy: ANN {ann_acc} vs SNN {snn_acc}"
        );
    }

    #[test]
    fn snn_accuracy_improves_with_timesteps() {
        let mut r = rng();
        let data = blobs01(50, &mut r);
        let mut net = Network::new(vec![
            Layer::dense(2, 16, &mut r),
            Layer::relu(),
            Layer::dense(16, 2, &mut r),
        ]);
        let cfg = TrainConfig::builder().epochs(30).batch_size(10).build();
        train(&mut net, &data, &cfg, &mut r).unwrap();
        let mut snn = ann_to_snn(&net, &data.take(40), &ConversionConfig::default()).unwrap();
        // Average several Poisson draws at T=2 to avoid a lucky run.
        let mut acc_short = 0.0;
        for _ in 0..5 {
            acc_short += snn.accuracy(&data.inputs, &data.labels, 2, &mut r).unwrap();
        }
        acc_short /= 5.0;
        let acc_long = snn
            .accuracy(&data.inputs, &data.labels, 300, &mut r)
            .unwrap();
        assert!(
            acc_long >= acc_short,
            "longer evidence integration should not hurt: {acc_short} vs {acc_long}"
        );
        assert!(acc_long > 0.85);
    }

    #[test]
    fn conversion_handles_conv_pool_topologies() {
        let mut r = rng();
        let net = Network::new(vec![
            Layer::conv2d(1, 2, 3, 1, 1, &mut r),
            Layer::relu(),
            Layer::avg_pool(2),
            Layer::flatten(),
            Layer::dense(2 * 4, 2, &mut r),
        ]);
        let calib = Dataset::new(
            Tensor::rand_uniform(&[8, 1, 4, 4], 0.0, 1.0, &mut r),
            vec![0; 8],
        )
        .unwrap();
        let snn = ann_to_snn(&net, &calib, &ConversionConfig::default()).unwrap();
        // conv, IF(relu), pool, IF(pool), flatten, dense = 6 stages.
        assert_eq!(snn.stages().len(), 6);
        assert_eq!(snn.if_layer_count(), 2);
    }

    #[test]
    fn convert_prefix_reports_boundary_scale() {
        let mut r = rng();
        let data = blobs01(30, &mut r);
        let mut net = Network::new(vec![
            Layer::dense(2, 8, &mut r),
            Layer::relu(),
            Layer::dense(8, 4, &mut r),
            Layer::relu(),
            Layer::dense(4, 2, &mut r),
        ]);
        let cfg = TrainConfig::builder().epochs(10).batch_size(10).build();
        train(&mut net, &data, &cfg, &mut r).unwrap();
        // Split after the first ReLU (prefix = dense + relu).
        let (stages, boundary) =
            convert_prefix(&net, &data, 2, &ConversionConfig::default()).unwrap();
        assert_eq!(stages.len(), 2);
        assert!(boundary > 0.0, "boundary scale must be the ReLU ceiling");
        // Full conversion of the same net still works.
        let (all, _) = convert_prefix(&net, &data, 5, &ConversionConfig::default()).unwrap();
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn quantized_networks_convert_via_quant_ceilings() {
        let mut r = rng();
        let data = blobs01(40, &mut r);
        let mut net = Network::new(vec![
            Layer::dense(2, 16, &mut r),
            Layer::relu(),
            Layer::dense(16, 2, &mut r),
        ]);
        let cfg = TrainConfig::builder().epochs(25).batch_size(10).build();
        train(&mut net, &data, &cfg, &mut r).unwrap();
        let q = crate::quant::quantize_network(&net, &data.take(20), &Default::default()).unwrap();
        let mut snn = ann_to_snn(&q, &data.take(20), &ConversionConfig::default()).unwrap();
        let acc = snn
            .accuracy(&data.inputs, &data.labels, 200, &mut r)
            .unwrap();
        assert!(acc > 0.85, "quantized SNN accuracy too low: {acc}");
        // The ActivationQuant stage must have been absorbed, not copied.
        assert!(snn
            .stages()
            .iter()
            .all(|s| !matches!(s, SnnStage::Synaptic(Layer::ActivationQuant(_)))));
    }
}
