//! # nebula-nn
//!
//! The algorithm level of the NEBULA stack (Singh et al., ISCA 2020):
//! a from-scratch neural-network library covering everything the paper's
//! evaluation needs —
//!
//! * [`layer`] / [`network`] — ANN layers (dense, conv, depthwise conv,
//!   batch-norm, ReLU, average pooling) with full backward passes.
//! * [`optim`] / [`loss`] — SGD-with-momentum training on labelled
//!   datasets.
//! * [`quant`] — the paper's 4-bit post-training quantization: percentile
//!   activation clipping plus range-based linear quantization of weights
//!   and activations (§IV-C, Fig. 9).
//! * [`snn`] — leak-free integrate-and-fire simulation with Poisson rate
//!   encoding and per-layer spike statistics (Fig. 4).
//! * [`convert`] — ANN→SNN conversion: batch-norm folding and data-based
//!   threshold balancing (§V-A, Table I).
//! * [`hybrid`] — hybrid SNN-ANN models with accumulate-and-rescale
//!   boundaries (§V-B, Table II, Fig. 17).
//! * [`stats`] — layer descriptors feeding the architecture-level energy
//!   model, and the ANN/SNN feature-map correlation metric (Fig. 10).
//!
//! # Examples
//!
//! Train a small ANN, quantize it to 4 bits, convert it to an SNN and
//! check that the spiking model classifies:
//!
//! ```
//! use nebula_nn::{Layer, Network};
//! use nebula_nn::optim::{train, Dataset, TrainConfig};
//! use nebula_nn::quant::{quantize_network, QuantConfig};
//! use nebula_nn::convert::{ann_to_snn, ConversionConfig};
//! use nebula_tensor::Tensor;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut net = Network::new(vec![
//!     Layer::dense(2, 8, &mut rng),
//!     Layer::relu(),
//!     Layer::dense(8, 2, &mut rng),
//! ]);
//! // A toy two-class task: which input is larger.
//! let inputs = Tensor::from_vec(vec![0.9, 0.1, 0.1, 0.9, 0.8, 0.2, 0.3, 0.7], &[4, 2])?;
//! let data = Dataset::new(inputs, vec![0, 1, 0, 1])?;
//! train(&mut net, &data, &TrainConfig::builder().epochs(60).batch_size(4).build(), &mut rng)?;
//!
//! let quantized = quantize_network(&net, &data, &QuantConfig::default())?;
//! let mut snn = ann_to_snn(&quantized, &data, &ConversionConfig::default())?;
//! let acc = snn.accuracy(&data.inputs, &data.labels, 100, &mut rng)?;
//! assert!(acc >= 0.5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod convert;
pub mod error;
pub mod hybrid;
pub mod layer;
pub mod loss;
pub mod metrics;
pub mod network;
pub mod optim;
pub mod param;
pub mod quant;
pub mod snn;
pub mod stats;

pub use error::NnError;
pub use hybrid::HybridNetwork;
pub use layer::Layer;
pub use network::Network;
pub use optim::{Dataset, TrainConfig};
pub use snn::{InputEncoding, ResetMode, SpikingNetwork};
pub use stats::{LayerDescriptor, LayerOp};
