//! Spiking-neural-network simulation: integrate-and-fire layers, rate
//! (Poisson) input encoding and spike-activity statistics.
//!
//! The simulated neuron is the paper's leak-free, refractory-free linear
//! IF neuron (Eq. 2): `u(t+1) = u(t) + Σ_j w_j·i_j(t)`, firing when
//! `u ≥ v_th`. This is exactly the dynamics the DW-MTJ neuron device
//! realizes in hardware
//! ([`nebula_device::neuron::SpikingNeuron`](https://docs.rs)) — membrane
//! potential as domain-wall position, fire-and-reset at the far edge.

use crate::error::NnError;
use crate::layer::Layer;
use nebula_tensor::Tensor;
use rand::Rng;

/// What happens to the membrane potential when a neuron fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResetMode {
    /// Subtract the threshold (retains super-threshold charge; the usual
    /// choice for high-accuracy ANN→SNN conversion).
    #[default]
    Subtract,
    /// Reset to the resting potential (the paper's Eq. 2 description; the
    /// DW-MTJ device resets its wall to the left edge).
    Zero,
}

/// How the input image is turned into spikes each timestep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InputEncoding {
    /// Bernoulli/Poisson rate coding: a pixel of intensity `p ∈ [0,1]`
    /// spikes with probability `p` each timestep (paper §V-A).
    #[default]
    Poisson,
    /// The analog intensity is injected as a constant input current every
    /// timestep (a common lower-variance alternative).
    Constant,
}

/// One stage of a spiking network.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)] // synaptic stages dominate by design
pub enum SnnStage {
    /// A synaptic stage reusing an ANN layer's arithmetic (dense, conv,
    /// depthwise, pool, flatten) applied to the spike tensor.
    Synaptic(Layer),
    /// An integrate-and-fire neuron population.
    IntegrateFire(IfPopulation),
}

/// Homeostatic threshold adaptation: each neuron's threshold drifts so
/// its long-run firing rate approaches `target_rate` — the homeostasis
/// extension §II-A lists among the bio-fidelity avenues.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Homeostasis {
    /// Desired spikes per neuron per timestep.
    pub target_rate: f32,
    /// Threshold adaptation step per timestep.
    pub adaptation_rate: f32,
    /// Lower bound keeping thresholds positive.
    pub min_threshold: f32,
}

impl Homeostasis {
    /// A gentle default: 10% target rate, slow adaptation.
    pub fn new(target_rate: f32) -> Self {
        Self {
            target_rate,
            adaptation_rate: 0.01,
            min_threshold: 0.05,
        }
    }
}

/// State of one population of IF neurons.
#[derive(Debug, Clone, PartialEq)]
pub struct IfPopulation {
    /// Firing threshold `v_th`.
    pub threshold: f32,
    /// Reset behaviour on firing.
    pub reset: ResetMode,
    /// Multiplicative membrane retention per timestep (1.0 = the paper's
    /// leak-free IF neuron; < 1.0 gives a leaky LIF neuron — one of the
    /// bio-fidelity extensions §II-A mentions).
    pub leak: f32,
    /// Refractory period: timesteps a neuron ignores input after firing
    /// (0 = the paper's refractory-free neuron).
    pub refractory: u32,
    /// Optional homeostatic threshold adaptation.
    pub homeostasis: Option<Homeostasis>,
    membrane: Option<Tensor>,
    refractory_left: Vec<u32>,
    thresholds: Vec<f32>,
    total_spikes: u64,
    neuron_count: usize,
}

impl IfPopulation {
    /// Creates a population with the given threshold and reset mode
    /// (membrane state materializes on first use). Leak-free,
    /// refractory-free — the paper's inference neuron.
    pub fn new(threshold: f32, reset: ResetMode) -> Self {
        Self::with_dynamics(threshold, reset, 1.0, 0)
    }

    /// Creates a population with full LIF dynamics: membrane retention
    /// `leak ∈ (0, 1]` per timestep and a `refractory` dead time after
    /// each spike.
    ///
    /// # Panics
    ///
    /// Panics when `leak` is outside `(0, 1]`.
    pub fn with_dynamics(threshold: f32, reset: ResetMode, leak: f32, refractory: u32) -> Self {
        assert!(
            leak > 0.0 && leak <= 1.0,
            "membrane retention must be in (0, 1], got {leak}"
        );
        Self {
            threshold,
            reset,
            leak,
            refractory,
            homeostasis: None,
            membrane: None,
            refractory_left: Vec::new(),
            thresholds: Vec::new(),
            total_spikes: 0,
            neuron_count: 0,
        }
    }

    /// Enables homeostatic threshold adaptation (builder style).
    pub fn with_homeostasis(mut self, h: Homeostasis) -> Self {
        self.homeostasis = Some(h);
        self
    }

    /// The current per-neuron thresholds (the shared `threshold` until
    /// homeostasis has adapted them).
    pub fn thresholds(&self) -> &[f32] {
        &self.thresholds
    }

    /// Advances one timestep: integrates `input` into the membrane and
    /// returns the binary spike tensor.
    pub fn step(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let needs_init = !matches!(&self.membrane, Some(m) if m.shape() == input.shape());
        if needs_init {
            self.membrane = Some(Tensor::zeros(input.shape()));
            self.refractory_left = vec![0; input.len()];
            self.thresholds = vec![self.threshold; input.len()];
            self.neuron_count = input.len();
        }
        let membrane = self.membrane.as_mut().expect("initialized above");
        if self.leak < 1.0 {
            membrane.map_inplace(|v| v * self.leak);
        }
        let mut spikes = Tensor::zeros(input.shape());
        let mut fired = 0u64;
        {
            let (m, s) = (membrane.data_mut(), spikes.data_mut());
            let x = input.data();
            for i in 0..m.len() {
                if self.refractory > 0 && self.refractory_left[i] > 0 {
                    self.refractory_left[i] -= 1;
                    continue; // input arriving in the dead time is lost
                }
                m[i] += x[i];
                let th = self.thresholds[i];
                let spiked = m[i] >= th;
                if spiked {
                    s[i] = 1.0;
                    fired += 1;
                    match self.reset {
                        ResetMode::Subtract => m[i] -= th,
                        ResetMode::Zero => m[i] = 0.0,
                    }
                    if self.refractory > 0 {
                        self.refractory_left[i] = self.refractory;
                    }
                }
                if let Some(h) = self.homeostasis {
                    // Firing above target raises the threshold; silence
                    // lowers it — the rate self-regulates.
                    let err = f32::from(spiked) - h.target_rate;
                    self.thresholds[i] =
                        (self.thresholds[i] + h.adaptation_rate * err).max(h.min_threshold);
                }
            }
        }
        self.total_spikes += fired;
        Ok(spikes)
    }

    /// Clears membrane state and counters for a new inference window.
    pub fn reset_state(&mut self) {
        self.membrane = None;
        self.refractory_left.clear();
        self.thresholds.clear();
        self.total_spikes = 0;
        self.neuron_count = 0;
    }

    /// Total spikes fired since the last reset.
    pub fn total_spikes(&self) -> u64 {
        self.total_spikes
    }

    /// Number of neurons in the population (0 before first use).
    pub fn neuron_count(&self) -> usize {
        self.neuron_count
    }
}

/// Per-layer spiking-activity statistics (the data behind the paper's
/// Fig. 4).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpikeStats {
    /// Average spikes per neuron per timestep, one entry per IF layer in
    /// network order.
    pub activity_per_layer: Vec<f64>,
    /// Total spikes per IF layer.
    pub total_spikes_per_layer: Vec<u64>,
    /// Neuron count per IF layer.
    pub neurons_per_layer: Vec<usize>,
    /// Number of timesteps simulated.
    pub timesteps: usize,
}

impl SpikeStats {
    /// Mean spiking activity across all layers.
    pub fn mean_activity(&self) -> f64 {
        if self.activity_per_layer.is_empty() {
            0.0
        } else {
            self.activity_per_layer.iter().sum::<f64>() / self.activity_per_layer.len() as f64
        }
    }
}

/// Result of running a spiking network on a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct SnnRunResult {
    /// Predicted class per sample (argmax of accumulated output
    /// potential).
    pub predictions: Vec<usize>,
    /// Accumulated output potentials `[N, classes]` — proportional to the
    /// ANN logits when conversion succeeded.
    pub output_potentials: Tensor,
    /// Spiking statistics per IF layer.
    pub stats: SpikeStats,
}

/// A spiking network: synaptic stages interleaved with IF populations,
/// ending in a potential-accumulating readout stage.
///
/// Build one from a trained ANN with
/// [`crate::convert::ann_to_snn`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpikingNetwork {
    stages: Vec<SnnStage>,
    encoding: InputEncoding,
}

impl SpikingNetwork {
    /// Assembles a spiking network from explicit stages.
    pub fn new(stages: Vec<SnnStage>, encoding: InputEncoding) -> Self {
        Self { stages, encoding }
    }

    /// The stages, in order.
    pub fn stages(&self) -> &[SnnStage] {
        &self.stages
    }

    /// Mutable stage access (used by the hybrid splitter).
    pub fn stages_mut(&mut self) -> &mut Vec<SnnStage> {
        &mut self.stages
    }

    /// Number of IF populations.
    pub fn if_layer_count(&self) -> usize {
        self.stages
            .iter()
            .filter(|s| matches!(s, SnnStage::IntegrateFire(_)))
            .count()
    }

    /// Clears all membrane state.
    pub fn reset_state(&mut self) {
        for stage in &mut self.stages {
            if let SnnStage::IntegrateFire(p) = stage {
                p.reset_state();
            }
        }
    }

    /// Encodes `inputs` (intensities, ideally in `[0, 1]`) into this
    /// timestep's spike tensor.
    fn encode<R: Rng + ?Sized>(&self, inputs: &Tensor, rng: &mut R) -> Tensor {
        match self.encoding {
            InputEncoding::Poisson => {
                let mut t = Tensor::zeros(inputs.shape());
                let (src, dst) = (inputs.data(), t.data_mut());
                for i in 0..src.len() {
                    let p = src[i].clamp(0.0, 1.0);
                    if rng.gen::<f32>() < p {
                        dst[i] = 1.0;
                    }
                }
                t
            }
            InputEncoding::Constant => inputs.clamp(0.0, 1.0),
        }
    }

    /// Runs the network for `timesteps` steps on a batch of inputs,
    /// resetting all state first.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn run<R: Rng + ?Sized>(
        &mut self,
        inputs: &Tensor,
        timesteps: usize,
        rng: &mut R,
    ) -> Result<SnnRunResult, NnError> {
        let (result, _) = self.run_recording(inputs, timesteps, rng, &[])?;
        Ok(result)
    }

    /// Like [`run`](Self::run) but additionally records cumulative spike
    /// counts of selected IF layers (by IF-layer index) at the end of the
    /// run. Recorded tensors have the shape of the layer output and hold
    /// total spike counts per neuron, which divided by `timesteps` are
    /// the rate-coded activations used by the hybrid boundary and the
    /// Fig. 10 correlation study.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn run_recording<R: Rng + ?Sized>(
        &mut self,
        inputs: &Tensor,
        timesteps: usize,
        rng: &mut R,
        record_if_layers: &[usize],
    ) -> Result<(SnnRunResult, Vec<Tensor>), NnError> {
        self.reset_state();
        let mut output_acc: Option<Tensor> = None;
        let mut recorded: Vec<Option<Tensor>> = vec![None; record_if_layers.len()];

        for _t in 0..timesteps {
            let mut h = self.encode(inputs, rng);
            let mut if_index = 0usize;
            for stage in &mut self.stages {
                match stage {
                    SnnStage::Synaptic(layer) => {
                        h = layer.forward(&h, false)?;
                    }
                    SnnStage::IntegrateFire(pop) => {
                        h = pop.step(&h)?;
                        if let Some(slot) = record_if_layers.iter().position(|&r| r == if_index) {
                            match &mut recorded[slot] {
                                Some(acc) => acc.add_assign(&h)?,
                                none => *none = Some(h.clone()),
                            }
                        }
                        if_index += 1;
                    }
                }
            }
            // Readout: accumulate the final stage's analog output.
            match &mut output_acc {
                Some(acc) => acc.add_assign(&h)?,
                none => *none = Some(h),
            }
        }

        let output_potentials = output_acc.unwrap_or_else(|| Tensor::zeros(&[0, 0]));
        let predictions = if output_potentials.rank() == 2 {
            output_potentials.argmax_rows()?
        } else {
            Vec::new()
        };
        let mut stats = SpikeStats {
            timesteps,
            ..SpikeStats::default()
        };
        for stage in &self.stages {
            if let SnnStage::IntegrateFire(p) = stage {
                stats.total_spikes_per_layer.push(p.total_spikes());
                stats.neurons_per_layer.push(p.neuron_count());
                let denom = (p.neuron_count() * timesteps).max(1) as f64;
                stats
                    .activity_per_layer
                    .push(p.total_spikes() as f64 / denom);
            }
        }
        let recorded = recorded.into_iter().flatten().collect();
        Ok((
            SnnRunResult {
                predictions,
                output_potentials,
                stats,
            },
            recorded,
        ))
    }

    /// Classification accuracy of the SNN over a labelled batch.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    ///
    /// # Panics
    ///
    /// Panics when `labels.len()` differs from the batch size.
    pub fn accuracy<R: Rng + ?Sized>(
        &mut self,
        inputs: &Tensor,
        labels: &[usize],
        timesteps: usize,
        rng: &mut R,
    ) -> Result<f64, NnError> {
        let result = self.run(inputs, timesteps, rng)?;
        assert_eq!(result.predictions.len(), labels.len());
        let correct = result
            .predictions
            .iter()
            .zip(labels)
            .filter(|(p, l)| p == l)
            .count();
        Ok(correct as f64 / labels.len().max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(17)
    }

    #[test]
    fn if_population_integrates_and_fires() {
        let mut pop = IfPopulation::new(1.0, ResetMode::Subtract);
        let half = Tensor::full(&[1, 2], 0.6);
        let s1 = pop.step(&half).unwrap();
        assert_eq!(s1.data(), &[0.0, 0.0]);
        let s2 = pop.step(&half).unwrap();
        assert_eq!(s2.data(), &[1.0, 1.0]);
        assert_eq!(pop.total_spikes(), 2);
        assert_eq!(pop.neuron_count(), 2);
    }

    #[test]
    fn subtract_reset_preserves_residual_charge() {
        let mut pop = IfPopulation::new(1.0, ResetMode::Subtract);
        pop.step(&Tensor::full(&[1], 1.5)).unwrap();
        // Residual 0.5 remains: the next 0.5 input fires again.
        let s = pop.step(&Tensor::full(&[1], 0.5)).unwrap();
        assert_eq!(s.data(), &[1.0]);
    }

    #[test]
    fn zero_reset_discards_residual_charge() {
        let mut pop = IfPopulation::new(1.0, ResetMode::Zero);
        pop.step(&Tensor::full(&[1], 1.5)).unwrap();
        let s = pop.step(&Tensor::full(&[1], 0.5)).unwrap();
        assert_eq!(s.data(), &[0.0]);
    }

    #[test]
    fn if_firing_rate_matches_input_rate() {
        // With v_th = 1 and constant input r, the firing rate converges
        // to r (the core fact behind ANN→SNN conversion).
        let mut pop = IfPopulation::new(1.0, ResetMode::Subtract);
        let r = 0.37f32;
        let t = 1000;
        for _ in 0..t {
            pop.step(&Tensor::full(&[1], r)).unwrap();
        }
        let rate = pop.total_spikes() as f64 / t as f64;
        assert!((rate - r as f64).abs() < 0.01, "rate {rate} vs input {r}");
    }

    #[test]
    fn poisson_encoding_matches_intensity() {
        let net = SpikingNetwork::new(Vec::new(), InputEncoding::Poisson);
        let mut r = rng();
        let x = Tensor::full(&[1, 1000], 0.3);
        let mut total = 0.0;
        let reps = 50;
        for _ in 0..reps {
            total += net.encode(&x, &mut r).sum();
        }
        let rate = total as f64 / (1000.0 * reps as f64);
        assert!((rate - 0.3).abs() < 0.02, "poisson rate {rate}");
    }

    #[test]
    fn constant_encoding_passes_intensities() {
        let net = SpikingNetwork::new(Vec::new(), InputEncoding::Constant);
        let mut r = rng();
        let x = Tensor::from_vec(vec![0.2, 1.5, -0.3], &[1, 3]).unwrap();
        let e = net.encode(&x, &mut r);
        assert_eq!(e.data(), &[0.2, 1.0, 0.0]); // clamped to [0,1]
    }

    #[test]
    fn single_if_network_rate_codes_identity() {
        // x → dense(identity) → IF: spike counts ≈ intensity · T.
        let mut rng = rng();
        let mut dense = Layer::dense(2, 2, &mut rng);
        if let Layer::Dense(d) = &mut dense {
            d.weight.value = Tensor::eye(2);
            d.bias.value = Tensor::zeros(&[2]);
        }
        let mut snn = SpikingNetwork::new(
            vec![
                SnnStage::Synaptic(dense),
                SnnStage::IntegrateFire(IfPopulation::new(1.0, ResetMode::Subtract)),
            ],
            InputEncoding::Constant,
        );
        let x = Tensor::from_vec(vec![0.8, 0.2], &[1, 2]).unwrap();
        let t = 500;
        let result = snn.run(&x, t, &mut rng).unwrap();
        // Output potentials here are the accumulated binary spikes.
        let counts = result.output_potentials;
        assert!((counts.data()[0] / t as f32 - 0.8).abs() < 0.01);
        assert!((counts.data()[1] / t as f32 - 0.2).abs() < 0.01);
        assert_eq!(result.predictions, vec![0]);
    }

    #[test]
    fn stats_report_per_layer_activity() {
        let mut rng = rng();
        let mut dense = Layer::dense(1, 1, &mut rng);
        if let Layer::Dense(d) = &mut dense {
            d.weight.value = Tensor::ones(&[1, 1]);
            d.bias.value = Tensor::zeros(&[1]);
        }
        let mut snn = SpikingNetwork::new(
            vec![
                SnnStage::Synaptic(dense),
                SnnStage::IntegrateFire(IfPopulation::new(1.0, ResetMode::Subtract)),
            ],
            InputEncoding::Constant,
        );
        let x = Tensor::full(&[1, 1], 0.5);
        let result = snn.run(&x, 100, &mut rng).unwrap();
        assert_eq!(result.stats.activity_per_layer.len(), 1);
        assert!((result.stats.activity_per_layer[0] - 0.5).abs() < 0.02);
        assert_eq!(result.stats.timesteps, 100);
        assert!((result.stats.mean_activity() - 0.5).abs() < 0.02);
    }

    #[test]
    fn recording_returns_cumulative_spike_counts() {
        let mut rng = rng();
        let mut dense = Layer::dense(1, 1, &mut rng);
        if let Layer::Dense(d) = &mut dense {
            d.weight.value = Tensor::ones(&[1, 1]);
            d.bias.value = Tensor::zeros(&[1]);
        }
        let mut snn = SpikingNetwork::new(
            vec![
                SnnStage::Synaptic(dense),
                SnnStage::IntegrateFire(IfPopulation::new(1.0, ResetMode::Subtract)),
            ],
            InputEncoding::Constant,
        );
        let x = Tensor::full(&[1, 1], 1.0);
        let (_, rec) = snn.run_recording(&x, 50, &mut rng, &[0]).unwrap();
        assert_eq!(rec.len(), 1);
        assert_eq!(rec[0].data()[0], 50.0); // fires every step at rate 1.0
    }

    #[test]
    fn leaky_neuron_forgets_subthreshold_charge() {
        // With 50% retention a 0.6 input can never reach threshold 1.0:
        // the fixed point is 0.6/(1-0.5) = 1.2 > 1 ... so choose 0.4:
        // fixed point 0.8 < 1.0 → never fires. The leak-free neuron
        // fires every ⌈1/0.4⌉ steps.
        let mut leaky = IfPopulation::with_dynamics(1.0, ResetMode::Subtract, 0.5, 0);
        let mut ideal = IfPopulation::new(1.0, ResetMode::Subtract);
        let x = Tensor::full(&[1], 0.4);
        for _ in 0..200 {
            leaky.step(&x).unwrap();
            ideal.step(&x).unwrap();
        }
        assert_eq!(leaky.total_spikes(), 0, "leaky neuron must stay silent");
        assert!(ideal.total_spikes() >= 70, "leak-free neuron must fire");
    }

    #[test]
    fn strong_input_still_drives_leaky_neurons() {
        let mut leaky = IfPopulation::with_dynamics(1.0, ResetMode::Subtract, 0.9, 0);
        let x = Tensor::full(&[1], 0.5);
        for _ in 0..100 {
            leaky.step(&x).unwrap();
        }
        // Fixed point 0.5/(1-0.9) = 5 » threshold: fires, but at a lower
        // rate than the input would suggest without leak.
        let rate = leaky.total_spikes() as f64 / 100.0;
        assert!(rate > 0.2 && rate < 0.5, "leaky rate {rate}");
    }

    #[test]
    fn refractory_period_caps_the_firing_rate() {
        // Saturated input with a 3-step dead time → fires every 4th step.
        let mut pop = IfPopulation::with_dynamics(1.0, ResetMode::Zero, 1.0, 3);
        let x = Tensor::full(&[1], 5.0);
        let mut spikes = 0;
        for _ in 0..40 {
            spikes += pop.step(&x).unwrap().data()[0] as u64;
        }
        assert_eq!(spikes, 10, "refractory cap violated");
    }

    #[test]
    fn refractory_input_is_lost_not_buffered() {
        let mut pop = IfPopulation::with_dynamics(1.0, ResetMode::Zero, 1.0, 2);
        // Step 1: big input fires. Steps 2-3: inputs land in dead time.
        pop.step(&Tensor::full(&[1], 1.0)).unwrap();
        pop.step(&Tensor::full(&[1], 10.0)).unwrap();
        pop.step(&Tensor::full(&[1], 10.0)).unwrap();
        // Step 4: out of refractory with an empty membrane.
        let s = pop.step(&Tensor::full(&[1], 0.4)).unwrap();
        assert_eq!(s.data()[0], 0.0, "dead-time input must be discarded");
    }

    #[test]
    fn homeostasis_regulates_the_firing_rate() {
        // A strong constant drive would fire every step; homeostasis
        // raises the threshold until the rate settles near the target.
        let mut pop = IfPopulation::new(1.0, ResetMode::Subtract).with_homeostasis(Homeostasis {
            target_rate: 0.2,
            adaptation_rate: 0.05,
            min_threshold: 0.05,
        });
        let x = Tensor::full(&[1, 8], 1.0);
        // Warm-up to adapt.
        for _ in 0..400 {
            pop.step(&x).unwrap();
        }
        let before = pop.total_spikes();
        for _ in 0..200 {
            pop.step(&x).unwrap();
        }
        let rate = (pop.total_spikes() - before) as f64 / (200.0 * 8.0);
        assert!(
            (rate - 0.2).abs() < 0.05,
            "homeostatic rate {rate} missed the 0.2 target"
        );
        assert!(pop.thresholds().iter().all(|&t| t > 1.0));
    }

    #[test]
    fn homeostasis_also_lowers_thresholds_for_weak_input() {
        let mut pop =
            IfPopulation::new(5.0, ResetMode::Zero).with_homeostasis(Homeostasis::new(0.5));
        let x = Tensor::full(&[1], 0.3);
        for _ in 0..2000 {
            pop.step(&x).unwrap();
        }
        assert!(
            pop.thresholds()[0] < 5.0,
            "threshold should fall toward the reachable regime"
        );
        assert!(pop.total_spikes() > 0, "adapted neuron must fire");
    }

    #[test]
    fn homeostasis_is_off_by_default() {
        let pop = IfPopulation::new(1.0, ResetMode::Subtract);
        assert!(pop.homeostasis.is_none());
    }

    #[test]
    #[should_panic(expected = "membrane retention")]
    fn invalid_leak_panics() {
        IfPopulation::with_dynamics(1.0, ResetMode::Zero, 0.0, 0);
    }

    #[test]
    fn reset_state_clears_between_runs() {
        let mut rng = rng();
        let mut snn = SpikingNetwork::new(
            vec![SnnStage::IntegrateFire(IfPopulation::new(
                1.0,
                ResetMode::Subtract,
            ))],
            InputEncoding::Constant,
        );
        let x = Tensor::full(&[1, 4], 0.9);
        let r1 = snn.run(&x, 10, &mut rng).unwrap();
        let r2 = snn.run(&x, 10, &mut rng).unwrap();
        assert_eq!(
            r1.stats.total_spikes_per_layer, r2.stats.total_spikes_per_layer,
            "state leaked between runs"
        );
    }
}
