//! Network layers with forward and backward passes.
//!
//! Layers are plain structs grouped under the [`Layer`] enum so networks
//! can be cloned, inspected and rewritten (the ANN→SNN conversion rewrites
//! topologies structurally). Each layer caches what its backward pass
//! needs during `forward(train=true)`.

// Index-based loops are kept where they mirror the per-channel math.
#![allow(clippy::needless_range_loop)]

use crate::error::NnError;
use crate::param::Param;
// Matmuls and patch lowering go through `par` — bit-identical to the
// sequential ops for any worker count, and backed by the blocked GEMM.
use nebula_tensor::{avg_pool2d, avg_pool2d_backward, col2im, par, ConvGeometry, Tensor};
use rand::Rng;

/// A network layer.
///
/// # Examples
///
/// ```
/// use nebula_nn::layer::Layer;
/// use nebula_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut dense = Layer::dense(4, 2, &mut rng);
/// let x = Tensor::ones(&[1, 4]);
/// let y = dense.forward(&x, false)?;
/// assert_eq!(y.shape(), &[1, 2]);
/// # Ok::<(), nebula_nn::NnError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Layer {
    /// Fully connected layer: `[N, F] → [N, O]`.
    Dense(DenseLayer),
    /// Dense 2-D convolution: `[N, C, H, W] → [N, OC, OH, OW]`.
    Conv2d(Conv2dLayer),
    /// Depthwise 2-D convolution: `[N, C, H, W] → [N, C, OH, OW]`.
    DepthwiseConv2d(DepthwiseConv2dLayer),
    /// Batch normalization over the channel axis of `[N, C, H, W]`.
    BatchNorm2d(BatchNorm2dLayer),
    /// Rectified linear activation.
    Relu(ReluLayer),
    /// Non-overlapping average pooling.
    AvgPool(AvgPoolLayer),
    /// Collapses `[N, ...] → [N, prod(...)]`.
    Flatten(FlattenLayer),
    /// Clips activations to `[0, amax]` and rounds them onto a uniform
    /// grid of `levels` values — the range-based linear activation
    /// quantizer of the paper's §IV-C.
    ActivationQuant(ActivationQuantLayer),
}

impl Layer {
    /// Creates a dense layer with Kaiming-normal weights.
    pub fn dense<R: Rng + ?Sized>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        let sigma = (2.0 / in_features as f32).sqrt();
        Layer::Dense(DenseLayer {
            weight: Param::new(Tensor::rand_normal(
                &[in_features, out_features],
                sigma,
                rng,
            )),
            bias: Param::new(Tensor::zeros(&[out_features])),
            cache_input: None,
        })
    }

    /// Creates a dense 2-D convolution with Kaiming-normal weights.
    pub fn conv2d<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut R,
    ) -> Self {
        let fan_in = (in_channels * kernel * kernel) as f32;
        let sigma = (2.0 / fan_in).sqrt();
        Layer::Conv2d(Conv2dLayer {
            weight: Param::new(Tensor::rand_normal(
                &[out_channels, in_channels, kernel, kernel],
                sigma,
                rng,
            )),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            geom: ConvGeometry::new(kernel, stride, pad),
            cache: None,
        })
    }

    /// Creates a depthwise 2-D convolution with Kaiming-normal weights.
    pub fn depthwise_conv2d<R: Rng + ?Sized>(
        channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut R,
    ) -> Self {
        let sigma = (2.0 / (kernel * kernel) as f32).sqrt();
        Layer::DepthwiseConv2d(DepthwiseConv2dLayer {
            weight: Param::new(Tensor::rand_normal(
                &[channels, 1, kernel, kernel],
                sigma,
                rng,
            )),
            bias: Param::new(Tensor::zeros(&[channels])),
            geom: ConvGeometry::new(kernel, stride, pad),
            cache_input: None,
        })
    }

    /// Creates a batch-normalization layer over `channels`.
    pub fn batch_norm2d(channels: usize) -> Self {
        Layer::BatchNorm2d(BatchNorm2dLayer {
            gamma: Param::new(Tensor::ones(&[channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        })
    }

    /// Creates a ReLU activation.
    pub fn relu() -> Self {
        Layer::Relu(ReluLayer { cache_mask: None })
    }

    /// Creates a `k×k`, stride-`k` average-pool layer.
    pub fn avg_pool(k: usize) -> Self {
        Layer::AvgPool(AvgPoolLayer {
            k,
            cache_shape: None,
        })
    }

    /// Creates a flatten layer.
    pub fn flatten() -> Self {
        Layer::Flatten(FlattenLayer { cache_shape: None })
    }

    /// Creates an activation quantizer clipping at `amax` with `levels`
    /// uniform steps.
    pub fn activation_quant(amax: f32, levels: usize) -> Self {
        Layer::ActivationQuant(ActivationQuantLayer { amax, levels })
    }

    /// Short human-readable layer name.
    pub fn name(&self) -> &'static str {
        match self {
            Layer::Dense(_) => "dense",
            Layer::Conv2d(_) => "conv2d",
            Layer::DepthwiseConv2d(_) => "depthwise_conv2d",
            Layer::BatchNorm2d(_) => "batch_norm2d",
            Layer::Relu(_) => "relu",
            Layer::AvgPool(_) => "avg_pool",
            Layer::Flatten(_) => "flatten",
            Layer::ActivationQuant(_) => "activation_quant",
        }
    }

    /// Runs the layer forward. With `train = true` the layer caches
    /// whatever its backward pass needs and batch-norm uses batch
    /// statistics.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the tensor substrate.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, NnError> {
        match self {
            Layer::Dense(l) => l.forward(x, train),
            Layer::Conv2d(l) => l.forward(x, train),
            Layer::DepthwiseConv2d(l) => l.forward(x, train),
            Layer::BatchNorm2d(l) => l.forward(x, train),
            Layer::Relu(l) => l.forward(x, train),
            Layer::AvgPool(l) => l.forward(x, train),
            Layer::Flatten(l) => l.forward(x, train),
            Layer::ActivationQuant(l) => l.forward(x, train),
        }
    }

    /// Runs the layer backward, accumulating parameter gradients and
    /// returning the gradient with respect to the layer input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BackwardBeforeForward`] when no forward pass has
    /// been cached.
    pub fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError> {
        match self {
            Layer::Dense(l) => l.backward(grad),
            Layer::Conv2d(l) => l.backward(grad),
            Layer::DepthwiseConv2d(l) => l.backward(grad),
            Layer::BatchNorm2d(l) => l.backward(grad),
            Layer::Relu(l) => l.backward(grad),
            Layer::AvgPool(l) => l.backward(grad),
            Layer::Flatten(l) => l.backward(grad),
            // Straight-through estimator: the quantizer is identity in the
            // backward pass.
            Layer::ActivationQuant(_) => Ok(grad.clone()),
        }
    }

    /// Mutable access to this layer's trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        match self {
            Layer::Dense(l) => vec![&mut l.weight, &mut l.bias],
            Layer::Conv2d(l) => vec![&mut l.weight, &mut l.bias],
            Layer::DepthwiseConv2d(l) => vec![&mut l.weight, &mut l.bias],
            Layer::BatchNorm2d(l) => vec![&mut l.gamma, &mut l.beta],
            _ => Vec::new(),
        }
    }

    /// Clears accumulated gradients on all parameters.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// True for layers that hold synaptic weights (and therefore map onto
    /// crossbars).
    pub fn is_weight_layer(&self) -> bool {
        matches!(
            self,
            Layer::Dense(_) | Layer::Conv2d(_) | Layer::DepthwiseConv2d(_)
        )
    }

    /// Output shape for a given input shape, without running data through
    /// the layer.
    ///
    /// # Errors
    ///
    /// Returns an error when the input shape is incompatible.
    pub fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>, NnError> {
        match self {
            Layer::Dense(l) => {
                if input.len() != 2 || input[1] != l.weight.value.shape()[0] {
                    return Err(NnError::InvalidConfig {
                        reason: format!(
                            "dense layer with {} inputs fed shape {input:?}",
                            l.weight.value.shape()[0]
                        ),
                    });
                }
                Ok(vec![input[0], l.weight.value.shape()[1]])
            }
            Layer::Conv2d(l) => {
                let (oh, ow) = l.geom.out_hw(input[2], input[3])?;
                Ok(vec![input[0], l.weight.value.shape()[0], oh, ow])
            }
            Layer::DepthwiseConv2d(l) => {
                let (oh, ow) = l.geom.out_hw(input[2], input[3])?;
                Ok(vec![input[0], input[1], oh, ow])
            }
            Layer::BatchNorm2d(_) | Layer::Relu(_) | Layer::ActivationQuant(_) => {
                Ok(input.to_vec())
            }
            Layer::AvgPool(l) => Ok(vec![input[0], input[1], input[2] / l.k, input[3] / l.k]),
            Layer::Flatten(_) => Ok(vec![input[0], input[1..].iter().product()]),
        }
    }
}

// ---------------------------------------------------------------------
// Dense
// ---------------------------------------------------------------------

/// Fully connected layer: `y = x·W + b` with `W: [F, O]`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseLayer {
    /// Weight matrix `[in_features, out_features]`.
    pub weight: Param,
    /// Bias vector `[out_features]`.
    pub bias: Param,
    cache_input: Option<Tensor>,
}

impl DenseLayer {
    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, NnError> {
        let mut y = par::matmul(x, &self.weight.value)?;
        let o = self.bias.value.len();
        let b = self.bias.value.data();
        for row in y.data_mut().chunks_mut(o) {
            for (v, &bb) in row.iter_mut().zip(b) {
                *v += bb;
            }
        }
        if train {
            self.cache_input = Some(x.clone());
        }
        Ok(y)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError> {
        let x = self
            .cache_input
            .take()
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: "dense".to_string(),
            })?;
        let dw = par::matmul(&x.transpose()?, grad)?;
        self.weight.grad.add_assign(&dw)?;
        let o = self.bias.value.len();
        {
            let db = self.bias.grad.data_mut();
            for row in grad.data().chunks(o) {
                for (d, &g) in db.iter_mut().zip(row) {
                    *d += g;
                }
            }
        }
        Ok(par::matmul(grad, &self.weight.value.transpose()?)?)
    }
}

// ---------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
struct ConvCache {
    cols: Tensor,
    input_shape: [usize; 4],
}

/// Dense 2-D convolution implemented by `im2col` + matmul — mirroring how
/// NEBULA physically maps kernels onto crossbar columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Conv2dLayer {
    /// Kernel tensor `[OC, IC, KH, KW]`.
    pub weight: Param,
    /// Bias vector `[OC]`.
    pub bias: Param,
    /// Spatial geometry (kernel, stride, padding).
    pub geom: ConvGeometry,
    cache: Option<ConvCache>,
}

impl Conv2dLayer {
    fn wmat(&self) -> Result<Tensor, NnError> {
        let s = self.weight.value.shape();
        Ok(self.weight.value.reshape(&[s[0], s[1] * s[2] * s[3]])?)
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, NnError> {
        let (n, _c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let oc = self.weight.value.shape()[0];
        let (oh, ow) = self.geom.out_hw(h, w)?;
        let cols = par::im2col(x, self.geom)?; // [N*S, CKK]
        let prod = par::matmul(&cols, &self.wmat()?.transpose()?)?; // [N*S, OC]

        let mut out = Tensor::zeros(&[n, oc, oh, ow]);
        let spatial = oh * ow;
        let src = prod.data();
        let b = self.bias.value.data();
        let dst = out.data_mut();
        for img in 0..n {
            for s in 0..spatial {
                let src_row = (img * spatial + s) * oc;
                for o in 0..oc {
                    dst[img * oc * spatial + o * spatial + s] = src[src_row + o] + b[o];
                }
            }
        }
        if train {
            self.cache = Some(ConvCache {
                cols,
                input_shape: [n, x.shape()[1], h, w],
            });
        }
        Ok(out)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError> {
        let cache = self
            .cache
            .take()
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: "conv2d".to_string(),
            })?;
        let (n, oc, oh, ow) = (
            grad.shape()[0],
            grad.shape()[1],
            grad.shape()[2],
            grad.shape()[3],
        );
        let spatial = oh * ow;
        // Permute grad [N, OC, S] → gmat [N*S, OC].
        let mut gmat = Tensor::zeros(&[n * spatial, oc]);
        {
            let src = grad.data();
            let dst = gmat.data_mut();
            for img in 0..n {
                for o in 0..oc {
                    for s in 0..spatial {
                        dst[(img * spatial + s) * oc + o] =
                            src[img * oc * spatial + o * spatial + s];
                    }
                }
            }
        }
        // dW = gmatᵀ · cols, reshaped back to [OC, IC, KH, KW].
        let dwm = par::matmul(&gmat.transpose()?, &cache.cols)?;
        let dw = dwm.reshape(self.weight.value.shape())?;
        self.weight.grad.add_assign(&dw)?;
        // db = per-channel sums.
        {
            let db = self.bias.grad.data_mut();
            for row in gmat.data().chunks(oc) {
                for (d, &g) in db.iter_mut().zip(row) {
                    *d += g;
                }
            }
        }
        // dx = col2im(gmat · Wmat).
        let dcols = par::matmul(&gmat, &self.wmat()?)?;
        Ok(col2im(&dcols, cache.input_shape, self.geom)?)
    }
}

// ---------------------------------------------------------------------
// DepthwiseConv2d
// ---------------------------------------------------------------------

/// Depthwise 2-D convolution (each channel convolved independently).
#[derive(Debug, Clone, PartialEq)]
pub struct DepthwiseConv2dLayer {
    /// Kernel tensor `[C, 1, KH, KW]`.
    pub weight: Param,
    /// Bias vector `[C]`.
    pub bias: Param,
    /// Spatial geometry (kernel, stride, padding).
    pub geom: ConvGeometry,
    cache_input: Option<Tensor>,
}

impl DepthwiseConv2dLayer {
    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, NnError> {
        let y = nebula_tensor::depthwise_conv2d(
            x,
            &self.weight.value,
            Some(&self.bias.value),
            self.geom,
        )?;
        if train {
            self.cache_input = Some(x.clone());
        }
        Ok(y)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError> {
        let x = self
            .cache_input
            .take()
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: "depthwise_conv2d".to_string(),
            })?;
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (oh, ow) = (grad.shape()[2], grad.shape()[3]);
        let g = self.geom;
        let mut dx = Tensor::zeros(&[n, c, h, w]);
        let (xs, gs, ws) = (x.data(), grad.data(), self.weight.value.data());
        {
            let dxd = dx.data_mut();
            let dwd = self.weight.grad.data_mut();
            let dbd = self.bias.grad.data_mut();
            for img in 0..n {
                for ch in 0..c {
                    let in_base = (img * c + ch) * h * w;
                    let out_base = (img * c + ch) * oh * ow;
                    let w_base = ch * g.kh * g.kw;
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let go = gs[out_base + oy * ow + ox];
                            if go == 0.0 {
                                continue;
                            }
                            dbd[ch] += go;
                            for ky in 0..g.kh {
                                let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                                if iy < 0 || iy as usize >= h {
                                    continue;
                                }
                                for kx in 0..g.kw {
                                    let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                                    if ix < 0 || ix as usize >= w {
                                        continue;
                                    }
                                    let xi = in_base + iy as usize * w + ix as usize;
                                    dwd[w_base + ky * g.kw + kx] += go * xs[xi];
                                    dxd[xi] += go * ws[w_base + ky * g.kw + kx];
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(dx)
    }
}

// ---------------------------------------------------------------------
// BatchNorm2d
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
struct BnCache {
    xhat: Tensor,
    inv_std: Vec<f32>,
}

/// Batch normalization over the channel axis of `[N, C, H, W]`.
///
/// At inference the running statistics are used; the ANN→SNN conversion
/// folds this layer into the preceding convolution
/// ([`crate::convert::fold_batch_norm`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchNorm2dLayer {
    /// Learnable scale `[C]`.
    pub gamma: Param,
    /// Learnable shift `[C]`.
    pub beta: Param,
    /// Running mean per channel.
    pub running_mean: Vec<f32>,
    /// Running variance per channel.
    pub running_var: Vec<f32>,
    /// Running-statistics update rate.
    pub momentum: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    cache: Option<BnCache>,
}

impl BatchNorm2dLayer {
    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, NnError> {
        if x.rank() != 4 {
            return Err(NnError::InvalidConfig {
                reason: format!("batch_norm2d expects rank-4 input, got {:?}", x.shape()),
            });
        }
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let m = (n * h * w) as f32;
        let spatial = h * w;
        let mut out = Tensor::zeros(x.shape());
        let mut xhat = Tensor::zeros(x.shape());
        let mut inv_std = vec![0.0f32; c];
        for ch in 0..c {
            let (mean, var) = if train {
                let mut sum = 0.0f64;
                let mut sq = 0.0f64;
                for img in 0..n {
                    let base = (img * c + ch) * spatial;
                    for s in 0..spatial {
                        let v = x.data()[base + s] as f64;
                        sum += v;
                        sq += v * v;
                    }
                }
                let mean = (sum / m as f64) as f32;
                let var = ((sq / m as f64) as f32 - mean * mean).max(0.0);
                self.running_mean[ch] =
                    (1.0 - self.momentum) * self.running_mean[ch] + self.momentum * mean;
                self.running_var[ch] =
                    (1.0 - self.momentum) * self.running_var[ch] + self.momentum * var;
                (mean, var)
            } else {
                (self.running_mean[ch], self.running_var[ch])
            };
            let istd = 1.0 / (var + self.eps).sqrt();
            inv_std[ch] = istd;
            let (gm, bt) = (self.gamma.value.data()[ch], self.beta.value.data()[ch]);
            for img in 0..n {
                let base = (img * c + ch) * spatial;
                for s in 0..spatial {
                    let xh = (x.data()[base + s] - mean) * istd;
                    xhat.data_mut()[base + s] = xh;
                    out.data_mut()[base + s] = gm * xh + bt;
                }
            }
        }
        if train {
            self.cache = Some(BnCache { xhat, inv_std });
        }
        Ok(out)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError> {
        let cache = self
            .cache
            .take()
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: "batch_norm2d".to_string(),
            })?;
        let (n, c, h, w) = (
            grad.shape()[0],
            grad.shape()[1],
            grad.shape()[2],
            grad.shape()[3],
        );
        let m = (n * h * w) as f32;
        let spatial = h * w;
        let mut dx = Tensor::zeros(grad.shape());
        for ch in 0..c {
            let mut sum_g = 0.0f32;
            let mut sum_gx = 0.0f32;
            for img in 0..n {
                let base = (img * c + ch) * spatial;
                for s in 0..spatial {
                    let g = grad.data()[base + s];
                    sum_g += g;
                    sum_gx += g * cache.xhat.data()[base + s];
                }
            }
            self.gamma.grad.data_mut()[ch] += sum_gx;
            self.beta.grad.data_mut()[ch] += sum_g;
            let k = self.gamma.value.data()[ch] * cache.inv_std[ch] / m;
            for img in 0..n {
                let base = (img * c + ch) * spatial;
                for s in 0..spatial {
                    let g = grad.data()[base + s];
                    let xh = cache.xhat.data()[base + s];
                    dx.data_mut()[base + s] = k * (m * g - sum_g - xh * sum_gx);
                }
            }
        }
        Ok(dx)
    }
}

// ---------------------------------------------------------------------
// Relu / AvgPool / Flatten
// ---------------------------------------------------------------------

/// Rectified linear activation.
#[derive(Debug, Clone, PartialEq)]
pub struct ReluLayer {
    cache_mask: Option<Vec<bool>>,
}

impl ReluLayer {
    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, NnError> {
        if train {
            self.cache_mask = Some(x.data().iter().map(|&v| v > 0.0).collect());
        }
        Ok(x.relu())
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError> {
        let mask = self
            .cache_mask
            .take()
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: "relu".to_string(),
            })?;
        let mut dx = grad.clone();
        for (v, keep) in dx.data_mut().iter_mut().zip(mask) {
            if !keep {
                *v = 0.0;
            }
        }
        Ok(dx)
    }
}

/// Non-overlapping `k×k` average pooling.
#[derive(Debug, Clone, PartialEq)]
pub struct AvgPoolLayer {
    /// Pool window and stride.
    pub k: usize,
    cache_shape: Option<[usize; 4]>,
}

impl AvgPoolLayer {
    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, NnError> {
        if train {
            self.cache_shape = Some([x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]]);
        }
        Ok(avg_pool2d(x, self.k)?)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError> {
        let shape = self
            .cache_shape
            .take()
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: "avg_pool".to_string(),
            })?;
        Ok(avg_pool2d_backward(grad, shape, self.k)?)
    }
}

/// Collapses all non-batch dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct FlattenLayer {
    cache_shape: Option<Vec<usize>>,
}

impl FlattenLayer {
    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, NnError> {
        if train {
            self.cache_shape = Some(x.shape().to_vec());
        }
        let n = x.shape()[0];
        let rest: usize = x.shape()[1..].iter().product();
        Ok(x.reshape(&[n, rest])?)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError> {
        let shape = self
            .cache_shape
            .take()
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: "flatten".to_string(),
            })?;
        Ok(grad.reshape(&shape)?)
    }
}

/// Range-based linear activation quantizer (§IV-C): clips to `[0, amax]`
/// and rounds onto `levels` uniform steps. Backward is straight-through.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivationQuantLayer {
    /// Clipping ceiling, fixed from calibration data.
    pub amax: f32,
    /// Number of quantization levels (16 at 4-bit precision).
    pub levels: usize,
}

impl ActivationQuantLayer {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Result<Tensor, NnError> {
        if self.levels < 2 || self.amax <= 0.0 {
            return Err(NnError::InvalidConfig {
                reason: format!(
                    "activation quantizer needs levels ≥ 2 and amax > 0, got {} / {}",
                    self.levels, self.amax
                ),
            });
        }
        let step = self.amax / (self.levels - 1) as f32;
        Ok(x.map(|v| {
            let clipped = v.clamp(0.0, self.amax);
            (clipped / step).round() * step
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    /// Numerically checks dL/dx for a layer where L = sum(forward(x) * c).
    fn check_input_gradient(layer: &mut Layer, x: &Tensor, tol: f32) {
        let mut r = rng();
        let y = layer.forward(x, true).unwrap();
        let c = Tensor::rand_uniform(y.shape(), -1.0, 1.0, &mut r);
        let dx = layer.backward(&c).unwrap();
        // Finite differences on a few elements.
        let eps = 1e-2f32;
        let probes = [0usize, x.len() / 2, x.len() - 1];
        for &i in &probes {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            // train=true so batch-norm's finite difference uses the same
            // batch statistics its analytic backward assumes.
            let yp = layer.forward(&xp, true).unwrap();
            let ym = layer.forward(&xm, true).unwrap();
            let lp: f32 = yp.data().iter().zip(c.data()).map(|(a, b)| a * b).sum();
            let lm: f32 = ym.data().iter().zip(c.data()).map(|(a, b)| a * b).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = dx.data()[i];
            assert!(
                (numeric - analytic).abs() < tol * numeric.abs().max(1.0),
                "grad mismatch at {i}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn dense_forward_shape_and_bias() {
        let mut r = rng();
        let mut l = Layer::dense(3, 2, &mut r);
        if let Layer::Dense(d) = &mut l {
            d.bias.value.data_mut()[0] = 1.0;
        }
        let y = l.forward(&Tensor::zeros(&[4, 3]), false).unwrap();
        assert_eq!(y.shape(), &[4, 2]);
        assert_eq!(y.at(&[0, 0]), 1.0);
        assert_eq!(y.at(&[0, 1]), 0.0);
    }

    #[test]
    fn dense_input_gradient_is_correct() {
        let mut r = rng();
        let mut l = Layer::dense(5, 4, &mut r);
        let x = Tensor::rand_uniform(&[3, 5], -1.0, 1.0, &mut r);
        check_input_gradient(&mut l, &x, 1e-2);
    }

    #[test]
    fn dense_weight_gradient_is_correct() {
        let mut r = rng();
        let mut l = Layer::dense(3, 2, &mut r);
        let x = Tensor::rand_uniform(&[2, 3], -1.0, 1.0, &mut r);
        let y = l.forward(&x, true).unwrap();
        let c = Tensor::rand_uniform(y.shape(), -1.0, 1.0, &mut r);
        l.backward(&c).unwrap();
        let analytic = if let Layer::Dense(d) = &l {
            d.weight.grad.clone()
        } else {
            unreachable!()
        };
        // Finite difference on w[0,0].
        let eps = 1e-2f32;
        let loss = |l: &mut Layer, x: &Tensor| -> f32 {
            let y = l.forward(x, false).unwrap();
            y.data().iter().zip(c.data()).map(|(a, b)| a * b).sum()
        };
        if let Layer::Dense(d) = &mut l {
            d.weight.value.data_mut()[0] += eps;
        }
        let lp = loss(&mut l, &x);
        if let Layer::Dense(d) = &mut l {
            d.weight.value.data_mut()[0] -= 2.0 * eps;
        }
        let lm = loss(&mut l, &x);
        let numeric = (lp - lm) / (2.0 * eps);
        assert!((numeric - analytic.data()[0]).abs() < 1e-2 * numeric.abs().max(1.0));
    }

    #[test]
    fn conv2d_input_gradient_is_correct() {
        let mut r = rng();
        let mut l = Layer::conv2d(2, 3, 3, 1, 1, &mut r);
        let x = Tensor::rand_uniform(&[1, 2, 5, 5], -1.0, 1.0, &mut r);
        check_input_gradient(&mut l, &x, 2e-2);
    }

    #[test]
    fn conv2d_strided_shapes() {
        let mut r = rng();
        let mut l = Layer::conv2d(3, 8, 3, 2, 1, &mut r);
        let y = l.forward(&Tensor::zeros(&[2, 3, 8, 8]), false).unwrap();
        assert_eq!(y.shape(), &[2, 8, 4, 4]);
        assert_eq!(l.output_shape(&[2, 3, 8, 8]).unwrap(), vec![2, 8, 4, 4]);
    }

    #[test]
    fn depthwise_input_gradient_is_correct() {
        let mut r = rng();
        let mut l = Layer::depthwise_conv2d(3, 3, 1, 1, &mut r);
        let x = Tensor::rand_uniform(&[1, 3, 4, 4], -1.0, 1.0, &mut r);
        check_input_gradient(&mut l, &x, 2e-2);
    }

    #[test]
    fn batch_norm_normalizes_in_train_mode() {
        let mut r = rng();
        let mut l = Layer::batch_norm2d(2);
        let x = Tensor::rand_uniform(&[8, 2, 4, 4], 5.0, 9.0, &mut r);
        let y = l.forward(&x, true).unwrap();
        // Per-channel mean ≈ 0, var ≈ 1 after normalization.
        let spatial = 16;
        for ch in 0..2 {
            let mut vals = Vec::new();
            for img in 0..8 {
                let base = (img * 2 + ch) * spatial;
                vals.extend_from_slice(&y.data()[base..base + spatial]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-3, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn batch_norm_eval_uses_running_stats() {
        let mut r = rng();
        let mut l = Layer::batch_norm2d(1);
        // Train on data with mean 10 to move the running stats.
        for _ in 0..50 {
            let x = Tensor::rand_uniform(&[8, 1, 2, 2], 9.0, 11.0, &mut r);
            l.forward(&x, true).unwrap();
        }
        // Eval on the same distribution: output should be ~N(0,1).
        let x = Tensor::full(&[1, 1, 2, 2], 10.0);
        let y = l.forward(&x, false).unwrap();
        assert!(
            y.data()[0].abs() < 0.5,
            "running stats not learned: {}",
            y.data()[0]
        );
    }

    #[test]
    fn batch_norm_input_gradient_is_correct() {
        let mut r = rng();
        let mut l = Layer::batch_norm2d(2);
        let x = Tensor::rand_uniform(&[4, 2, 3, 3], -2.0, 2.0, &mut r);
        check_input_gradient(&mut l, &x, 5e-2);
    }

    #[test]
    fn relu_masks_gradient() {
        let mut l = Layer::relu();
        let x = Tensor::from_vec(vec![-1.0, 2.0], &[1, 2]).unwrap();
        l.forward(&x, true).unwrap();
        let dx = l.backward(&Tensor::ones(&[1, 2])).unwrap();
        assert_eq!(dx.data(), &[0.0, 1.0]);
    }

    #[test]
    fn avg_pool_gradient_round_trip() {
        let mut l = Layer::avg_pool(2);
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let y = l.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        let dx = l.backward(&Tensor::ones(&[1, 1, 2, 2])).unwrap();
        assert!((dx.sum() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn flatten_round_trips() {
        let mut l = Layer::flatten();
        let x = Tensor::zeros(&[2, 3, 4, 4]);
        let y = l.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[2, 48]);
        let dx = l.backward(&Tensor::zeros(&[2, 48])).unwrap();
        assert_eq!(dx.shape(), &[2, 3, 4, 4]);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut l = Layer::relu();
        assert!(matches!(
            l.backward(&Tensor::zeros(&[1])),
            Err(NnError::BackwardBeforeForward { .. })
        ));
    }

    #[test]
    fn weight_layers_are_flagged() {
        let mut r = rng();
        assert!(Layer::dense(1, 1, &mut r).is_weight_layer());
        assert!(Layer::conv2d(1, 1, 3, 1, 1, &mut r).is_weight_layer());
        assert!(!Layer::relu().is_weight_layer());
        assert!(!Layer::batch_norm2d(4).is_weight_layer());
    }

    #[test]
    fn activation_quant_clips_and_snaps() {
        let mut l = Layer::activation_quant(1.5, 16);
        let x = Tensor::from_vec(vec![-0.3, 0.04, 0.75, 2.0], &[1, 4]).unwrap();
        let y = l.forward(&x, false).unwrap();
        let step = 1.5 / 15.0;
        assert_eq!(y.data()[0], 0.0); // rectified
        assert!((y.data()[1] - step * (0.04f32 / step).round()).abs() < 1e-6);
        assert_eq!(y.data()[3], 1.5); // clipped at amax
                                      // All outputs land exactly on the grid.
        for &v in y.data() {
            let k = v / step;
            assert!((k - k.round()).abs() < 1e-5);
        }
        // Straight-through backward.
        let g = l.backward(&Tensor::ones(&[1, 4])).unwrap();
        assert_eq!(g.data(), &[1.0; 4]);
    }

    #[test]
    fn activation_quant_rejects_bad_config() {
        let mut l = Layer::activation_quant(0.0, 16);
        assert!(l.forward(&Tensor::ones(&[1]), false).is_err());
        let mut l2 = Layer::activation_quant(1.0, 1);
        assert!(l2.forward(&Tensor::ones(&[1]), false).is_err());
    }

    #[test]
    fn output_shape_matches_forward_shapes() {
        let mut r = rng();
        let shapes: Vec<(Layer, Vec<usize>)> = vec![
            (Layer::dense(6, 4, &mut r), vec![2, 6]),
            (Layer::conv2d(2, 5, 3, 1, 1, &mut r), vec![2, 2, 6, 6]),
            (
                Layer::depthwise_conv2d(3, 3, 2, 1, &mut r),
                vec![1, 3, 6, 6],
            ),
            (Layer::batch_norm2d(3), vec![2, 3, 4, 4]),
            (Layer::relu(), vec![2, 3, 4, 4]),
            (Layer::avg_pool(2), vec![2, 3, 4, 4]),
            (Layer::flatten(), vec![2, 3, 4, 4]),
        ];
        for (mut layer, in_shape) in shapes {
            let x = Tensor::zeros(&in_shape);
            let y = layer.forward(&x, false).unwrap();
            assert_eq!(
                layer.output_shape(&in_shape).unwrap(),
                y.shape().to_vec(),
                "{} output_shape mismatch",
                layer.name()
            );
        }
    }
}
