//! Error types for the neural-network layer.

use nebula_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Errors produced while building, training or converting networks.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// `backward` was called before `forward` (no cached activations).
    BackwardBeforeForward {
        /// The layer that was asked to run backward.
        layer: String,
    },
    /// A configuration value was invalid.
    InvalidConfig {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// The network topology cannot support the requested operation
    /// (e.g. converting a network containing max-pool to an SNN).
    UnsupportedTopology {
        /// Human-readable description of the unsupported construct.
        reason: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor operation failed: {e}"),
            NnError::BackwardBeforeForward { layer } => {
                write!(f, "backward called before forward on layer `{layer}`")
            }
            NnError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            NnError::UnsupportedTopology { reason } => {
                write!(f, "unsupported topology: {reason}")
            }
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_errors_convert_and_chain() {
        let te = TensorError::InvalidGeometry {
            reason: "x".to_string(),
        };
        let ne: NnError = te.clone().into();
        assert!(ne.to_string().contains("tensor operation failed"));
        assert!(Error::source(&ne).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
