//! Loss functions for training.

#![allow(clippy::needless_range_loop)]

use crate::error::NnError;
use nebula_tensor::Tensor;

/// Softmax cross-entropy over logits.
///
/// Returns `(mean loss, gradient w.r.t. logits)`. The gradient is already
/// divided by the batch size, ready to feed into
/// [`Network::backward`](crate::Network::backward).
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] when the logits are not rank-2 or
/// the label count does not match the batch size, or a label is out of
/// range.
///
/// # Examples
///
/// ```
/// use nebula_nn::loss::softmax_cross_entropy;
/// use nebula_tensor::Tensor;
///
/// let logits = Tensor::from_vec(vec![2.0, 0.0, 0.0, 2.0], &[2, 2])?;
/// let (loss, grad) = softmax_cross_entropy(&logits, &[0, 1])?;
/// assert!(loss < 0.2);
/// assert_eq!(grad.shape(), &[2, 2]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor), NnError> {
    if logits.rank() != 2 {
        return Err(NnError::InvalidConfig {
            reason: format!(
                "cross-entropy expects rank-2 logits, got {:?}",
                logits.shape()
            ),
        });
    }
    let (n, c) = (logits.shape()[0], logits.shape()[1]);
    if labels.len() != n {
        return Err(NnError::InvalidConfig {
            reason: format!("{} labels for a batch of {n}", labels.len()),
        });
    }
    let mut grad = Tensor::zeros(&[n, c]);
    let mut total = 0.0f64;
    for i in 0..n {
        let label = labels[i];
        if label >= c {
            return Err(NnError::InvalidConfig {
                reason: format!("label {label} out of range for {c} classes"),
            });
        }
        let row = &logits.data()[i * c..(i + 1) * c];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&v| (v - m).exp()).collect();
        let z: f32 = exps.iter().sum();
        let log_z = z.ln();
        total += (log_z - (row[label] - m)) as f64;
        let g = &mut grad.data_mut()[i * c..(i + 1) * c];
        for j in 0..c {
            let p = exps[j] / z;
            g[j] = (p - if j == label { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    Ok(((total / n as f64) as f32, grad))
}

/// Softmax probabilities per row (numerically stable).
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for non-rank-2 input.
pub fn softmax(logits: &Tensor) -> Result<Tensor, NnError> {
    if logits.rank() != 2 {
        return Err(NnError::InvalidConfig {
            reason: format!("softmax expects rank-2 logits, got {:?}", logits.shape()),
        });
    }
    let (n, c) = (logits.shape()[0], logits.shape()[1]);
    let mut out = Tensor::zeros(&[n, c]);
    for i in 0..n {
        let row = &logits.data()[i * c..(i + 1) * c];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&v| (v - m).exp()).collect();
        let z: f32 = exps.iter().sum();
        let o = &mut out.data_mut()[i * c..(i + 1) * c];
        for j in 0..c {
            o[j] = exps[j] / z;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c_loss() {
        let logits = Tensor::zeros(&[4, 10]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1, 2, 3]).unwrap();
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_logits_give_small_loss() {
        let logits = Tensor::from_vec(vec![10.0, 0.0, 0.0, 10.0], &[2, 2]).unwrap();
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1]).unwrap();
        assert!(loss < 1e-3);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.5, 0.25], &[2, 3]).unwrap();
        let (_, grad) = softmax_cross_entropy(&logits, &[2, 0]).unwrap();
        for i in 0..2 {
            let s: f32 = grad.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![0.3, -0.2, 0.9], &[1, 3]).unwrap();
        let labels = [1usize];
        let (_, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3f32;
        for j in 0..3 {
            let mut lp = logits.clone();
            lp.data_mut()[j] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[j] -= eps;
            let (fp, _) = softmax_cross_entropy(&lp, &labels).unwrap();
            let (fm, _) = softmax_cross_entropy(&lm, &labels).unwrap();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[j]).abs() < 1e-3,
                "grad mismatch at {j}"
            );
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(softmax_cross_entropy(&logits, &[0]).is_err());
        assert!(softmax_cross_entropy(&logits, &[0, 5]).is_err());
        assert!(softmax_cross_entropy(&Tensor::zeros(&[6]), &[0]).is_err());
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let logits = Tensor::from_vec(vec![100.0, 0.0, -3.0, 2.0], &[2, 2]).unwrap();
        let p = softmax(&logits).unwrap();
        for i in 0..2 {
            let s: f32 = p.data()[i * 2..(i + 1) * 2].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        assert!(p.data()[0] > 0.999); // the 100-vs-0 row saturates
    }
}
