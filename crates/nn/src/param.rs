//! Trainable parameters: value, gradient and optimizer state bundled
//! together.

use nebula_tensor::Tensor;

/// One trainable parameter tensor with its accumulated gradient and the
/// momentum buffer the SGD optimizer uses.
///
/// # Examples
///
/// ```
/// use nebula_nn::param::Param;
/// use nebula_tensor::Tensor;
///
/// let mut p = Param::new(Tensor::ones(&[2, 2]));
/// p.grad.data_mut()[0] = 1.0;
/// p.sgd_step(0.1, 0.0, 0.0);
/// assert!((p.value.data()[0] - 0.9).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// The parameter values.
    pub value: Tensor,
    /// Gradient accumulated by the most recent backward pass.
    pub grad: Tensor,
    /// Momentum (velocity) buffer.
    pub velocity: Tensor,
}

impl Param {
    /// Wraps an initial value with zeroed gradient and momentum buffers.
    pub fn new(value: Tensor) -> Self {
        let shape = value.shape().to_vec();
        Self {
            value,
            grad: Tensor::zeros(&shape),
            velocity: Tensor::zeros(&shape),
        }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        for g in self.grad.data_mut() {
            *g = 0.0;
        }
    }

    /// Applies one SGD-with-momentum update:
    /// `v ← μ·v − lr·(g + wd·w)`, `w ← w + v`.
    pub fn sgd_step(&mut self, lr: f32, momentum: f32, weight_decay: f32) {
        let (w, g, v) = (
            self.value.data_mut(),
            self.grad.data(),
            self.velocity.data_mut(),
        );
        for i in 0..w.len() {
            v[i] = momentum * v[i] - lr * (g[i] + weight_decay * w[i]);
            w[i] += v[i];
        }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True when the parameter tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad_and_velocity() {
        let p = Param::new(Tensor::ones(&[3]));
        assert!(p.grad.data().iter().all(|&g| g == 0.0));
        assert!(p.velocity.data().iter().all(|&v| v == 0.0));
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut p = Param::new(Tensor::zeros(&[1]));
        p.grad.data_mut()[0] = 1.0;
        p.sgd_step(0.1, 0.9, 0.0);
        assert!((p.value.data()[0] + 0.1).abs() < 1e-6);
        p.sgd_step(0.1, 0.9, 0.0);
        // v = 0.9*(-0.1) - 0.1 = -0.19; w = -0.1 - 0.19 = -0.29.
        assert!((p.value.data()[0] + 0.29).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_pulls_towards_zero() {
        let mut p = Param::new(Tensor::ones(&[1]));
        p.sgd_step(0.1, 0.0, 0.5); // grad 0, wd pulls down by 0.1*0.5
        assert!((p.value.data()[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::ones(&[2]));
        p.grad.data_mut()[1] = 3.0;
        p.zero_grad();
        assert!(p.grad.data().iter().all(|&g| g == 0.0));
    }
}
