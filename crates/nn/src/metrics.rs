//! Classification-evaluation metrics: confusion matrices, per-class
//! precision/recall and top-k accuracy — the reporting layer the
//! accuracy experiments (Tables I–II) build on.

use crate::error::NnError;
use nebula_tensor::Tensor;

/// A `classes × classes` confusion matrix: `counts[truth][predicted]`.
///
/// # Examples
///
/// ```
/// use nebula_nn::metrics::ConfusionMatrix;
///
/// let mut cm = ConfusionMatrix::new(2);
/// cm.record(0, 0);
/// cm.record(0, 1);
/// cm.record(1, 1);
/// assert_eq!(cm.accuracy(), 2.0 / 3.0);
/// assert_eq!(cm.recall(0), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix over `classes` classes.
    ///
    /// # Panics
    ///
    /// Panics when `classes == 0`.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "confusion matrix needs at least one class");
        Self {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Builds a matrix from parallel truth/prediction slices.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when lengths differ or a label
    /// is out of range.
    pub fn from_predictions(
        classes: usize,
        truths: &[usize],
        predictions: &[usize],
    ) -> Result<Self, NnError> {
        if truths.len() != predictions.len() {
            return Err(NnError::InvalidConfig {
                reason: format!(
                    "{} truths vs {} predictions",
                    truths.len(),
                    predictions.len()
                ),
            });
        }
        let mut cm = Self::new(classes);
        for (&t, &p) in truths.iter().zip(predictions) {
            if t >= classes || p >= classes {
                return Err(NnError::InvalidConfig {
                    reason: format!("label {t}/{p} out of range for {classes} classes"),
                });
            }
            cm.record(t, p);
        }
        Ok(cm)
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics when either label is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(truth < self.classes && predicted < self.classes);
        self.counts[truth * self.classes + predicted] += 1;
    }

    /// Count at `(truth, predicted)`.
    pub fn count(&self, truth: usize, predicted: usize) -> u64 {
        self.counts[truth * self.classes + predicted]
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (0 when empty).
    pub fn accuracy(&self) -> f64 {
        let correct: u64 = (0..self.classes).map(|c| self.count(c, c)).sum();
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Recall of one class: correct / actual occurrences (0 when the
    /// class never occurred).
    pub fn recall(&self, class: usize) -> f64 {
        let actual: u64 = (0..self.classes).map(|p| self.count(class, p)).sum();
        if actual == 0 {
            0.0
        } else {
            self.count(class, class) as f64 / actual as f64
        }
    }

    /// Precision of one class: correct / predicted occurrences (0 when
    /// the class was never predicted).
    pub fn precision(&self, class: usize) -> f64 {
        let predicted: u64 = (0..self.classes).map(|t| self.count(t, class)).sum();
        if predicted == 0 {
            0.0
        } else {
            self.count(class, class) as f64 / predicted as f64
        }
    }

    /// Macro-averaged F1 score across classes.
    pub fn macro_f1(&self) -> f64 {
        let mut sum = 0.0;
        for c in 0..self.classes {
            let (p, r) = (self.precision(c), self.recall(c));
            if p + r > 0.0 {
                sum += 2.0 * p * r / (p + r);
            }
        }
        sum / self.classes as f64
    }
}

/// Top-k accuracy from logits: a sample counts as correct when its true
/// class is among the k highest logits.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for non-rank-2 logits, mismatched
/// label counts, `k == 0`, or `k` above the class count.
pub fn top_k_accuracy(logits: &Tensor, labels: &[usize], k: usize) -> Result<f64, NnError> {
    if logits.rank() != 2 {
        return Err(NnError::InvalidConfig {
            reason: format!("top-k expects rank-2 logits, got {:?}", logits.shape()),
        });
    }
    let (n, c) = (logits.shape()[0], logits.shape()[1]);
    if labels.len() != n || k == 0 || k > c {
        return Err(NnError::InvalidConfig {
            reason: format!(
                "bad top-k arguments: n={n}, labels={}, k={k}, classes={c}",
                labels.len()
            ),
        });
    }
    let mut correct = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        let row = &logits.data()[i * c..(i + 1) * c];
        let target = row[label];
        // Rank of the target = number of strictly larger logits.
        let larger = row.iter().filter(|&&v| v > target).count();
        if larger < k {
            correct += 1;
        }
    }
    Ok(correct as f64 / n.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cm() -> ConfusionMatrix {
        // truth 0: 3 correct, 1 as class 1; truth 1: 2 correct, 2 as 0.
        ConfusionMatrix::from_predictions(2, &[0, 0, 0, 0, 1, 1, 1, 1], &[0, 0, 0, 1, 1, 1, 0, 0])
            .unwrap()
    }

    #[test]
    fn counts_and_accuracy() {
        let cm = sample_cm();
        assert_eq!(cm.count(0, 0), 3);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.count(1, 0), 2);
        assert_eq!(cm.total(), 8);
        assert_eq!(cm.accuracy(), 5.0 / 8.0);
    }

    #[test]
    fn precision_and_recall() {
        let cm = sample_cm();
        assert_eq!(cm.recall(0), 0.75);
        assert_eq!(cm.recall(1), 0.5);
        assert_eq!(cm.precision(0), 3.0 / 5.0);
        assert_eq!(cm.precision(1), 2.0 / 3.0);
        assert!(cm.macro_f1() > 0.5 && cm.macro_f1() < 0.7);
    }

    #[test]
    fn degenerate_classes_return_zero() {
        let cm = ConfusionMatrix::new(3);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.recall(2), 0.0);
        assert_eq!(cm.precision(2), 0.0);
    }

    #[test]
    fn construction_validates() {
        assert!(ConfusionMatrix::from_predictions(2, &[0], &[0, 1]).is_err());
        assert!(ConfusionMatrix::from_predictions(2, &[2], &[0]).is_err());
    }

    #[test]
    fn top_k_counts_near_misses() {
        let logits = Tensor::from_vec(
            vec![
                0.1, 0.9, 0.0, // truth 0: rank 2
                0.2, 0.7, 0.1, // truth 1: rank 1
            ],
            &[2, 3],
        )
        .unwrap();
        assert_eq!(top_k_accuracy(&logits, &[0, 1], 1).unwrap(), 0.5);
        assert_eq!(top_k_accuracy(&logits, &[0, 1], 2).unwrap(), 1.0);
    }

    #[test]
    fn top_k_validates_inputs() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(top_k_accuracy(&logits, &[0], 1).is_err());
        assert!(top_k_accuracy(&logits, &[0, 1], 0).is_err());
        assert!(top_k_accuracy(&logits, &[0, 1], 4).is_err());
        assert!(top_k_accuracy(&Tensor::zeros(&[6]), &[0], 1).is_err());
    }

    #[test]
    fn top_full_k_is_always_one() {
        let logits = Tensor::zeros(&[3, 4]);
        assert_eq!(top_k_accuracy(&logits, &[0, 1, 2], 4).unwrap(), 1.0);
    }
}
