//! Sequential feed-forward networks.

use crate::error::NnError;
use crate::layer::Layer;
use nebula_tensor::Tensor;

/// A feed-forward network: an ordered stack of [`Layer`]s.
///
/// # Examples
///
/// ```
/// use nebula_nn::{Layer, Network};
/// use nebula_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut net = Network::new(vec![
///     Layer::dense(4, 8, &mut rng),
///     Layer::relu(),
///     Layer::dense(8, 2, &mut rng),
/// ]);
/// let logits = net.forward(&Tensor::ones(&[1, 4]))?;
/// assert_eq!(logits.shape(), &[1, 2]);
/// # Ok::<(), nebula_nn::NnError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Network {
    layers: Vec<Layer>,
}

impl Network {
    /// Builds a network from an ordered layer stack.
    pub fn new(layers: Vec<Layer>) -> Self {
        Self { layers }
    }

    /// The layers, in order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the layers (used by conversion passes).
    pub fn layers_mut(&mut self) -> &mut Vec<Layer> {
        &mut self.layers
    }

    /// Consumes the network and returns its layers.
    pub fn into_layers(self) -> Vec<Layer> {
        self.layers
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Number of weight-bearing (crossbar-mapped) layers.
    pub fn weight_layer_count(&self) -> usize {
        self.layers.iter().filter(|l| l.is_weight_layer()).count()
    }

    /// Total number of trainable scalar parameters.
    pub fn parameter_count(&mut self) -> usize {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .map(|p| p.len())
            .sum()
    }

    /// Inference forward pass (no caching, batch-norm in eval mode).
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn forward(&mut self, x: &Tensor) -> Result<Tensor, NnError> {
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward(&h, false)?;
        }
        Ok(h)
    }

    /// Training forward pass (caches activations for backward).
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn forward_train(&mut self, x: &Tensor) -> Result<Tensor, NnError> {
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward(&h, true)?;
        }
        Ok(h)
    }

    /// Forward pass that records the output of every layer (used by the
    /// calibration and feature-map-correlation experiments). Entry `i` is
    /// the output of layer `i`; the final entry is the network output.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn forward_collect(&mut self, x: &Tensor) -> Result<Vec<Tensor>, NnError> {
        let mut h = x.clone();
        let mut outputs = Vec::with_capacity(self.layers.len());
        for layer in &mut self.layers {
            h = layer.forward(&h, false)?;
            outputs.push(h.clone());
        }
        Ok(outputs)
    }

    /// Backward pass from the loss gradient at the output.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BackwardBeforeForward`] when called without a
    /// preceding [`forward_train`](Self::forward_train).
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    /// Clears all parameter gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Predicted class index per row of `x`.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn predict(&mut self, x: &Tensor) -> Result<Vec<usize>, NnError> {
        Ok(self.forward(x)?.argmax_rows()?)
    }

    /// Classification accuracy over a labelled batch, in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    ///
    /// # Panics
    ///
    /// Panics when `labels.len()` differs from the batch size.
    pub fn accuracy(&mut self, x: &Tensor, labels: &[usize]) -> Result<f64, NnError> {
        let preds = self.predict(x)?;
        assert_eq!(preds.len(), labels.len(), "label count != batch size");
        let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        Ok(correct as f64 / labels.len().max(1) as f64)
    }
}

impl FromIterator<Layer> for Network {
    fn from_iter<I: IntoIterator<Item = Layer>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

impl Extend<Layer> for Network {
    fn extend<I: IntoIterator<Item = Layer>>(&mut self, iter: I) {
        self.layers.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    fn tiny_net(r: &mut rand::rngs::StdRng) -> Network {
        Network::new(vec![
            Layer::dense(4, 8, r),
            Layer::relu(),
            Layer::dense(8, 3, r),
        ])
    }

    #[test]
    fn forward_produces_logits() {
        let mut r = rng();
        let mut net = tiny_net(&mut r);
        let y = net.forward(&Tensor::ones(&[2, 4])).unwrap();
        assert_eq!(y.shape(), &[2, 3]);
    }

    #[test]
    fn forward_collect_records_every_layer() {
        let mut r = rng();
        let mut net = tiny_net(&mut r);
        let outs = net.forward_collect(&Tensor::ones(&[1, 4])).unwrap();
        assert_eq!(outs.len(), 3);
        assert_eq!(outs[0].shape(), &[1, 8]);
        assert_eq!(outs[2].shape(), &[1, 3]);
        // ReLU output is the rectification of the dense output.
        assert_eq!(outs[1].data(), outs[0].relu().data());
    }

    #[test]
    fn counts_are_consistent() {
        let mut r = rng();
        let mut net = tiny_net(&mut r);
        assert_eq!(net.len(), 3);
        assert_eq!(net.weight_layer_count(), 2);
        assert_eq!(net.parameter_count(), 4 * 8 + 8 + 8 * 3 + 3);
    }

    #[test]
    fn backward_flows_to_input() {
        let mut r = rng();
        let mut net = tiny_net(&mut r);
        let x = Tensor::rand_uniform(&[2, 4], -1.0, 1.0, &mut r);
        let y = net.forward_train(&x).unwrap();
        let g = net.backward(&Tensor::ones(y.shape())).unwrap();
        assert_eq!(g.shape(), x.shape());
    }

    #[test]
    fn accuracy_on_identity_task() {
        let mut r = rng();
        let mut net = Network::new(vec![Layer::dense(2, 2, &mut r)]);
        // Force an identity weight matrix.
        if let Layer::Dense(d) = &mut net.layers_mut()[0] {
            d.weight.value = Tensor::eye(2);
            d.bias.value = Tensor::zeros(&[2]);
        }
        let x = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        let acc = net.accuracy(&x, &[0, 1]).unwrap();
        assert_eq!(acc, 1.0);
        let acc_bad = net.accuracy(&x, &[1, 0]).unwrap();
        assert_eq!(acc_bad, 0.0);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut r = rng();
        let mut net: Network = vec![Layer::dense(2, 2, &mut r)].into_iter().collect();
        net.extend([Layer::relu()]);
        assert_eq!(net.len(), 2);
    }
}
