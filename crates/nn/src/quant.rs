//! Post-training quantization (§IV-C of the paper).
//!
//! NEBULA stores 4-bit weights and activations (16 levels — the 16
//! resistive states of the DW-MTJ synapse). The paper's flow, reproduced
//! here:
//!
//! 1. Pass a calibration subset through the trained network and fix a
//!    per-layer activation ceiling `amax` at a percentile of the observed
//!    ReLU outputs; clip and linearly quantize activations to `[0, amax]`.
//! 2. Clip each layer's weights to an empirically chosen range (the
//!    crossbar's limited `G_max/G_min` ratio bounds the representable
//!    weight range) and quantize to 16 uniform levels.
//!
//! The [`quantize_network`] pass produces a *new* network with quantized
//! weights and explicit [`Layer::ActivationQuant`] stages after every
//! ReLU.

use crate::error::NnError;
use crate::layer::Layer;
use crate::network::Network;
use crate::optim::Dataset;
use nebula_tensor::Tensor;

/// Configuration for post-training quantization.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantConfig {
    /// Number of weight levels (16 = 4-bit; `None`-like full precision is
    /// expressed by simply not quantizing).
    pub weight_levels: usize,
    /// Number of activation levels.
    pub activation_levels: usize,
    /// Percentile (0–1) of activation magnitude used as the clipping
    /// ceiling `amax`.
    pub activation_percentile: f64,
    /// Percentile (0–1) of |weight| used as the per-layer weight clip.
    pub weight_percentile: f64,
}

impl Default for QuantConfig {
    /// The paper's operating point: 4-bit weights and activations,
    /// 99.9th-percentile activation clipping, 99.5th-percentile weight
    /// clipping.
    fn default() -> Self {
        Self {
            weight_levels: 16,
            activation_levels: 16,
            activation_percentile: 0.999,
            weight_percentile: 0.995,
        }
    }
}

impl QuantConfig {
    /// The paper's 4-bit default with a different weight level count —
    /// used by the Fig. 9 sweep over weight discretization levels.
    pub fn with_weight_levels(levels: usize) -> Self {
        Self {
            weight_levels: levels,
            ..Self::default()
        }
    }
}

/// Per-layer activation ceilings measured on calibration data. Entry `i`
/// corresponds to layer `i` of the *original* network and is `Some(amax)`
/// only for ReLU layers.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivationCalibration {
    ceilings: Vec<Option<f32>>,
}

impl ActivationCalibration {
    /// The ceiling for layer `i`, when layer `i` is a calibrated ReLU.
    pub fn ceiling(&self, layer: usize) -> Option<f32> {
        self.ceilings.get(layer).copied().flatten()
    }

    /// All ceilings, indexed by original layer position.
    pub fn ceilings(&self) -> &[Option<f32>] {
        &self.ceilings
    }
}

/// Measures per-ReLU activation ceilings by passing `calib` through the
/// network and taking the `percentile` quantile of each ReLU output.
///
/// # Errors
///
/// Propagates forward-pass errors; errors when the calibration set is
/// empty.
pub fn calibrate_activations(
    net: &mut Network,
    calib: &Dataset,
    percentile: f64,
) -> Result<ActivationCalibration, NnError> {
    if calib.is_empty() {
        return Err(NnError::InvalidConfig {
            reason: "calibration set is empty".to_string(),
        });
    }
    let outputs = net.forward_collect(&calib.inputs)?;
    let ceilings = net
        .layers()
        .iter()
        .zip(&outputs)
        .map(|(layer, out)| {
            if matches!(layer, Layer::Relu(_)) {
                // Guard against an all-zero layer output.
                let q = out.quantile(percentile);
                Some(if q > 0.0 { q } else { out.max().max(1e-6) })
            } else {
                None
            }
        })
        .collect();
    Ok(ActivationCalibration { ceilings })
}

/// Quantizes a weight tensor in place: clips to the `percentile` quantile
/// of |w| and rounds onto `levels` uniform steps over `[-clip, clip]`.
///
/// Returns the clip value used. With `levels == 0` the weights are left
/// untouched (full precision) and the returned clip is the max |w|.
pub fn quantize_weights_inplace(w: &mut Tensor, levels: usize, percentile: f64) -> f32 {
    let abs = w.map(f32::abs);
    let clip = {
        let q = abs.quantile(percentile);
        if q > 0.0 {
            q
        } else {
            abs.max().max(1e-6)
        }
    };
    if levels == 0 {
        return clip;
    }
    debug_assert!(levels >= 2, "weight quantization needs >= 2 levels");
    // Symmetric quantization onto the *device* grid: `levels` states
    // spread uniformly over [-clip, clip], i.e. `-clip + k·step` for
    // k = 0..levels-1. With an even level count this grid contains no
    // exact zero — matching the 16 conductance states of the DW-MTJ
    // crossbar cell, so software-quantized weights program losslessly.
    let step = 2.0 * clip / (levels - 1) as f32;
    w.map_inplace(|v| {
        let c = v.clamp(-clip, clip);
        -clip + ((c + clip) / step).round() * step
    });
    clip
}

/// Produces a quantized copy of `net`:
///
/// * every weight layer's parameters are clipped and quantized to
///   `config.weight_levels`;
/// * every ReLU gains a following [`Layer::ActivationQuant`] stage with
///   its calibrated ceiling and `config.activation_levels` levels.
///
/// Batch-norm layers should be folded away first
/// ([`crate::convert::fold_batch_norm`]) — quantizing through live BN
/// layers is rejected because crossbars cannot realize them.
///
/// # Errors
///
/// Returns [`NnError::UnsupportedTopology`] when the network still
/// contains batch-norm layers, plus any calibration errors.
pub fn quantize_network(
    net: &Network,
    calib: &Dataset,
    config: &QuantConfig,
) -> Result<Network, NnError> {
    if net
        .layers()
        .iter()
        .any(|l| matches!(l, Layer::BatchNorm2d(_)))
    {
        return Err(NnError::UnsupportedTopology {
            reason: "fold batch-norm layers before quantization".to_string(),
        });
    }
    let mut work = net.clone();
    let calibration = calibrate_activations(&mut work, calib, config.activation_percentile)?;

    let mut layers = Vec::with_capacity(net.len() * 2);
    for (i, layer) in net.layers().iter().enumerate() {
        let mut layer = layer.clone();
        if layer.is_weight_layer() && config.weight_levels > 0 {
            for p in layer.params_mut() {
                // Quantize the weight tensor; biases ride along at the same
                // level count (they map to crossbar bias columns).
                quantize_weights_inplace(
                    &mut p.value,
                    config.weight_levels,
                    config.weight_percentile,
                );
            }
        }
        let is_relu = matches!(layer, Layer::Relu(_));
        layers.push(layer);
        if is_relu {
            if let Some(amax) = calibration.ceiling(i) {
                layers.push(Layer::activation_quant(amax, config.activation_levels));
            }
        }
    }
    Ok(Network::new(layers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{train, TrainConfig};
    use rand::Rng;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(21)
    }

    fn blob_dataset(n_per: usize, r: &mut rand::rngs::StdRng) -> Dataset {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..2 * n_per {
            let class = i % 2;
            let center = if class == 0 { -1.0 } else { 1.0 };
            data.push(center + r.gen_range(-0.4f32..0.4));
            data.push(center + r.gen_range(-0.4f32..0.4));
            labels.push(class);
        }
        Dataset::new(Tensor::from_vec(data, &[2 * n_per, 2]).unwrap(), labels).unwrap()
    }

    fn trained_net(data: &Dataset, r: &mut rand::rngs::StdRng) -> Network {
        let mut net = Network::new(vec![
            Layer::dense(2, 16, r),
            Layer::relu(),
            Layer::dense(16, 2, r),
        ]);
        let cfg = TrainConfig::builder().epochs(25).batch_size(10).build();
        train(&mut net, data, &cfg, r).unwrap();
        net
    }

    #[test]
    fn weight_quantization_snaps_to_grid() {
        let mut w = Tensor::from_vec(vec![-2.0, -0.31, 0.02, 0.3, 1.9], &[5]).unwrap();
        let clip = quantize_weights_inplace(&mut w, 16, 1.0);
        assert!((clip - 2.0).abs() < 1e-6);
        let step = 2.0 * clip / 15.0;
        for &v in w.data() {
            // Device grid: -clip + k·step.
            let k = (v + clip) / step;
            assert!((k - k.round()).abs() < 1e-4, "{v} not on grid");
            assert!(v.abs() <= clip + 1e-6);
        }
    }

    #[test]
    fn weight_quantization_clips_outliers() {
        let mut data = vec![0.1f32; 99];
        data.push(100.0); // outlier
        let mut w = Tensor::from_vec(data, &[100]).unwrap();
        quantize_weights_inplace(&mut w, 16, 0.95);
        assert!(w.max() < 1.0, "outlier survived clipping: {}", w.max());
    }

    #[test]
    fn zero_levels_means_full_precision() {
        let mut w = Tensor::from_vec(vec![0.123, -0.456], &[2]).unwrap();
        let orig = w.clone();
        quantize_weights_inplace(&mut w, 0, 1.0);
        assert_eq!(w, orig);
    }

    #[test]
    fn calibration_finds_relu_ceilings_only() {
        let mut r = rng();
        let data = blob_dataset(20, &mut r);
        let mut net = trained_net(&data, &mut r);
        let calib = calibrate_activations(&mut net, &data, 0.999).unwrap();
        assert_eq!(calib.ceilings().len(), 3);
        assert!(calib.ceiling(0).is_none());
        assert!(calib.ceiling(1).is_some());
        assert!(calib.ceiling(1).unwrap() > 0.0);
        assert!(calib.ceiling(2).is_none());
    }

    #[test]
    fn quantized_network_keeps_accuracy_at_16_levels() {
        let mut r = rng();
        let data = blob_dataset(40, &mut r);
        let mut net = trained_net(&data, &mut r);
        let fp_acc = net.accuracy(&data.inputs, &data.labels).unwrap();
        let mut q = quantize_network(&net, &data.take(20), &QuantConfig::default()).unwrap();
        let q_acc = q.accuracy(&data.inputs, &data.labels).unwrap();
        assert!(
            q_acc >= fp_acc - 0.05,
            "16-level quantization lost too much: {fp_acc} → {q_acc}"
        );
        // The quantized net has an extra ActivationQuant stage.
        assert_eq!(q.len(), net.len() + 1);
        assert!(q
            .layers()
            .iter()
            .any(|l| matches!(l, Layer::ActivationQuant(_))));
    }

    #[test]
    fn binary_weights_degrade_more_than_16_levels() {
        let mut r = rng();
        let data = blob_dataset(40, &mut r);
        let net = trained_net(&data, &mut r);
        let calib = data.take(20);
        let mut q16 = quantize_network(&net, &calib, &QuantConfig::with_weight_levels(16)).unwrap();
        let mut q2 = quantize_network(&net, &calib, &QuantConfig::with_weight_levels(2)).unwrap();
        let a16 = q16.accuracy(&data.inputs, &data.labels).unwrap();
        let a2 = q2.accuracy(&data.inputs, &data.labels).unwrap();
        assert!(a16 >= a2, "16 levels ({a16}) should beat 2 levels ({a2})");
    }

    #[test]
    fn quantize_rejects_live_batch_norm() {
        let mut r = rng();
        let net = Network::new(vec![
            Layer::conv2d(1, 2, 3, 1, 1, &mut r),
            Layer::batch_norm2d(2),
            Layer::relu(),
        ]);
        let calib = Dataset::new(Tensor::ones(&[1, 1, 4, 4]), vec![0]).unwrap();
        assert!(matches!(
            quantize_network(&net, &calib, &QuantConfig::default()),
            Err(NnError::UnsupportedTopology { .. })
        ));
    }

    #[test]
    fn empty_calibration_set_is_rejected() {
        let mut r = rng();
        let mut net = Network::new(vec![Layer::dense(2, 2, &mut r), Layer::relu()]);
        let empty = Dataset::new(Tensor::zeros(&[0, 2]), vec![]).unwrap();
        assert!(calibrate_activations(&mut net, &empty, 0.999).is_err());
    }
}
