//! Layer descriptors and statistics that drive the architecture-level
//! energy model, plus the feature-map correlation metric of Fig. 10.
//!
//! A [`LayerDescriptor`] captures everything NEBULA's mapper needs about a
//! weight layer — receptive-field size `R_f = K_H·K_W·C`, kernel count,
//! output elements, MACs — without materializing weights, so full-size
//! topologies (AlexNet on 224×224 inputs, etc.) can be described cheaply.

use crate::error::NnError;
use crate::layer::Layer;
use crate::network::Network;
use nebula_tensor::Tensor;

/// The arithmetic operation a weight layer performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerOp {
    /// Dense convolution.
    Conv {
        /// Input channels.
        in_channels: usize,
        /// Output channels (number of kernels).
        out_channels: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
    },
    /// Depthwise convolution.
    DepthwiseConv {
        /// Channels (each convolved independently).
        channels: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
    },
    /// Fully connected layer.
    Dense {
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
}

/// Everything the architecture mapper needs to know about one weight
/// layer of a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerDescriptor {
    /// Position among the network's weight layers (0-based).
    pub index: usize,
    /// Human-readable label, e.g. `"conv3"`.
    pub name: String,
    /// The operation.
    pub op: LayerOp,
    /// Input spatial size `(h, w)`; `(1, 1)` for dense layers.
    pub input_hw: (usize, usize),
    /// Output spatial size `(h, w)`; `(1, 1)` for dense layers.
    pub output_hw: (usize, usize),
    /// Receptive-field size `R_f` — the number of crossbar rows one
    /// kernel needs (paper Fig. 5): `K_H·K_W·C` for conv, `in_features`
    /// for dense, `K_H·K_W` for depthwise.
    pub receptive_field: usize,
    /// Number of kernels mapped as crossbar columns (output channels /
    /// output features; depthwise maps each channel's kernel separately).
    pub kernels: usize,
    /// Number of output activations this layer produces per inference.
    pub output_elements: usize,
    /// Multiply-accumulate operations per inference.
    pub macs: u64,
    /// Average input activity for SNN-mode energy accounting: the mean
    /// spikes per input neuron per timestep. `1.0` models dense ANN
    /// inputs.
    pub input_activity: f64,
}

impl LayerDescriptor {
    /// Builds a conv-layer descriptor from geometry.
    #[allow(clippy::too_many_arguments)] // geometry parameters mirror the layer definition
    pub fn conv(
        index: usize,
        name: impl Into<String>,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        input_hw: (usize, usize),
    ) -> Self {
        let oh = (input_hw.0 + 2 * pad - kernel) / stride + 1;
        let ow = (input_hw.1 + 2 * pad - kernel) / stride + 1;
        let receptive_field = kernel * kernel * in_channels;
        let output_elements = out_channels * oh * ow;
        Self {
            index,
            name: name.into(),
            op: LayerOp::Conv {
                in_channels,
                out_channels,
                kernel,
                stride,
                pad,
            },
            input_hw,
            output_hw: (oh, ow),
            receptive_field,
            kernels: out_channels,
            output_elements,
            macs: output_elements as u64 * receptive_field as u64,
            input_activity: 1.0,
        }
    }

    /// Builds a depthwise-conv descriptor from geometry.
    pub fn depthwise(
        index: usize,
        name: impl Into<String>,
        channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        input_hw: (usize, usize),
    ) -> Self {
        let oh = (input_hw.0 + 2 * pad - kernel) / stride + 1;
        let ow = (input_hw.1 + 2 * pad - kernel) / stride + 1;
        let receptive_field = kernel * kernel;
        let output_elements = channels * oh * ow;
        Self {
            index,
            name: name.into(),
            op: LayerOp::DepthwiseConv {
                channels,
                kernel,
                stride,
                pad,
            },
            input_hw,
            output_hw: (oh, ow),
            receptive_field,
            kernels: channels,
            output_elements,
            macs: output_elements as u64 * receptive_field as u64,
            input_activity: 1.0,
        }
    }

    /// Builds a dense-layer descriptor.
    pub fn dense(
        index: usize,
        name: impl Into<String>,
        in_features: usize,
        out_features: usize,
    ) -> Self {
        Self {
            index,
            name: name.into(),
            op: LayerOp::Dense {
                in_features,
                out_features,
            },
            input_hw: (1, 1),
            output_hw: (1, 1),
            receptive_field: in_features,
            kernels: out_features,
            output_elements: out_features,
            macs: in_features as u64 * out_features as u64,
            input_activity: 1.0,
        }
    }

    /// Returns a copy with the given SNN input activity attached.
    pub fn with_activity(mut self, activity: f64) -> Self {
        self.input_activity = activity;
        self
    }

    /// True for the depthwise-separable layers whose small `R_f` drives
    /// NEBULA's biggest wins over ISAAC (paper Fig. 12 discussion).
    pub fn is_depthwise(&self) -> bool {
        matches!(self.op, LayerOp::DepthwiseConv { .. })
    }
}

/// Describes every weight layer of a concrete network for an input of
/// shape `[C, H, W]` (conv-first nets) or `[F]` (dense-first nets).
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] when the input shape is
/// incompatible with the first layer.
pub fn describe_network(
    net: &Network,
    input_shape: &[usize],
) -> Result<Vec<LayerDescriptor>, NnError> {
    let mut shape: Vec<usize> = std::iter::once(1usize)
        .chain(input_shape.iter().copied())
        .collect();
    let mut descriptors = Vec::new();
    let mut weight_index = 0usize;
    for layer in net.layers() {
        let out = layer.output_shape(&shape)?;
        match layer {
            Layer::Conv2d(c) => {
                let w = c.weight.value.shape();
                descriptors.push(LayerDescriptor::conv(
                    weight_index,
                    format!("conv{}", weight_index + 1),
                    w[1],
                    w[0],
                    w[2],
                    c.geom.stride,
                    c.geom.pad,
                    (shape[2], shape[3]),
                ));
                weight_index += 1;
            }
            Layer::DepthwiseConv2d(c) => {
                let w = c.weight.value.shape();
                descriptors.push(LayerDescriptor::depthwise(
                    weight_index,
                    format!("dwconv{}", weight_index + 1),
                    w[0],
                    w[2],
                    c.geom.stride,
                    c.geom.pad,
                    (shape[2], shape[3]),
                ));
                weight_index += 1;
            }
            Layer::Dense(d) => {
                let w = d.weight.value.shape();
                descriptors.push(LayerDescriptor::dense(
                    weight_index,
                    format!("fc{}", weight_index + 1),
                    w[0],
                    w[1],
                ));
                weight_index += 1;
            }
            _ => {}
        }
        shape = out;
    }
    Ok(descriptors)
}

/// Pearson correlation between two equally shaped maps — the Fig. 10
/// metric comparing ANN feature maps with SNN rate-coded feature maps.
///
/// Returns 0 when either map has zero variance.
///
/// # Errors
///
/// Returns a shape error when the tensors disagree.
pub fn feature_map_correlation(a: &Tensor, b: &Tensor) -> Result<f64, NnError> {
    if a.shape() != b.shape() {
        return Err(NnError::Tensor(nebula_tensor::TensorError::ShapeMismatch {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
            op: "feature_map_correlation",
        }));
    }
    let n = a.len() as f64;
    if n == 0.0 {
        return Ok(0.0);
    }
    let (ma, mb) = (a.mean() as f64, b.mean() as f64);
    let mut cov = 0.0f64;
    let mut va = 0.0f64;
    let mut vb = 0.0f64;
    for (&x, &y) in a.data().iter().zip(b.data()) {
        let (dx, dy) = (x as f64 - ma, y as f64 - mb);
        cov += dx * dy;
        va += dx * dx;
        vb += dy * dy;
    }
    if va == 0.0 || vb == 0.0 {
        return Ok(0.0);
    }
    Ok(cov / (va.sqrt() * vb.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn conv_descriptor_geometry() {
        // VGG first layer: 3→64, 3x3, same padding, 32x32 input.
        let d = LayerDescriptor::conv(0, "conv1", 3, 64, 3, 1, 1, (32, 32));
        assert_eq!(d.receptive_field, 27);
        assert_eq!(d.kernels, 64);
        assert_eq!(d.output_hw, (32, 32));
        assert_eq!(d.output_elements, 64 * 32 * 32);
        assert_eq!(d.macs, 64 * 32 * 32 * 27);
        assert!(!d.is_depthwise());
    }

    #[test]
    fn depthwise_descriptor_has_tiny_receptive_field() {
        let d = LayerDescriptor::depthwise(1, "dw", 64, 3, 1, 1, (16, 16));
        assert_eq!(d.receptive_field, 9);
        assert_eq!(d.kernels, 64);
        assert!(d.is_depthwise());
    }

    #[test]
    fn dense_descriptor() {
        let d = LayerDescriptor::dense(5, "fc", 512, 10);
        assert_eq!(d.receptive_field, 512);
        assert_eq!(d.kernels, 10);
        assert_eq!(d.macs, 5120);
    }

    #[test]
    fn describe_network_walks_shapes() {
        let mut r = rand::rngs::StdRng::seed_from_u64(0);
        let net = Network::new(vec![
            Layer::conv2d(1, 4, 3, 1, 1, &mut r),
            Layer::relu(),
            Layer::avg_pool(2),
            Layer::flatten(),
            Layer::dense(4 * 16 * 16, 10, &mut r),
        ]);
        let ds = describe_network(&net, &[1, 32, 32]).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds[0].receptive_field, 9);
        assert_eq!(ds[0].output_hw, (32, 32));
        assert_eq!(ds[1].receptive_field, 4 * 16 * 16);
        assert_eq!(ds[1].kernels, 10);
    }

    #[test]
    fn with_activity_attaches_rate() {
        let d = LayerDescriptor::dense(0, "fc", 4, 2).with_activity(0.1);
        assert_eq!(d.input_activity, 0.1);
    }

    #[test]
    fn correlation_of_identical_maps_is_one() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap();
        assert!((feature_map_correlation(&a, &a).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn correlation_of_anticorrelated_maps_is_minus_one() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 2.0, 1.0], &[3]).unwrap();
        assert!((feature_map_correlation(&a, &b).unwrap() + 1.0).abs() < 1e-9);
    }

    #[test]
    fn correlation_handles_degenerate_inputs() {
        let a = Tensor::zeros(&[3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        assert_eq!(feature_map_correlation(&a, &b).unwrap(), 0.0);
        assert!(feature_map_correlation(&a, &Tensor::zeros(&[4])).is_err());
    }

    #[test]
    fn noisy_copy_correlates_strongly_but_imperfectly() {
        let mut r = rand::rngs::StdRng::seed_from_u64(9);
        let a = Tensor::rand_uniform(&[1000], 0.0, 1.0, &mut r);
        let noise = Tensor::rand_uniform(&[1000], -0.05, 0.05, &mut r);
        let b = a.add(&noise).unwrap();
        let c = feature_map_correlation(&a, &b).unwrap();
        assert!(c > 0.95 && c < 1.0, "correlation {c}");
    }
}
