//! Hybrid SNN-ANN models (paper §V-B, Table II, Fig. 17).
//!
//! A deep network is split into a spiking prefix (close to the input) and
//! a non-spiking suffix. Spikes at the boundary are accumulated over the
//! inference window and rescaled to ANN-domain activations — the job
//! NEBULA's Accumulator Units (AUs) perform in hardware — then the ANN
//! suffix runs once on those continuous values. This recovers accuracy at
//! far fewer timesteps than a pure SNN while keeping most of the
//! computation in the low-power spiking domain.

use crate::convert::{convert_prefix, ConversionConfig};
use crate::error::NnError;
use crate::network::Network;
use crate::optim::Dataset;
use crate::snn::{SnnRunResult, SpikeStats, SpikingNetwork};
use nebula_tensor::Tensor;
use rand::Rng;

/// A network whose first layers are spiking and whose last
/// `ann_weight_layers` weight layers run in the continuous (ANN) domain.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridNetwork {
    snn_part: SpikingNetwork,
    ann_part: Network,
    boundary_scale: f32,
    ann_weight_layers: usize,
}

/// Result of one hybrid inference run.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridRunResult {
    /// Predicted class per sample.
    pub predictions: Vec<usize>,
    /// ANN-suffix logits.
    pub logits: Tensor,
    /// Spiking statistics of the SNN prefix.
    pub stats: SpikeStats,
}

impl HybridNetwork {
    /// Splits `net` so that its last `ann_weight_layers` weight-bearing
    /// layers stay in the ANN domain ("Hyb-k" in the paper's Table II) and
    /// converts the prefix to an SNN using `calib`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when `ann_weight_layers` is zero
    /// (use a pure SNN) or not smaller than the network's weight-layer
    /// count (use a pure ANN), plus any conversion errors.
    pub fn split(
        net: &Network,
        calib: &Dataset,
        ann_weight_layers: usize,
        config: &ConversionConfig,
    ) -> Result<Self, NnError> {
        let total_weight = net.weight_layer_count();
        if ann_weight_layers == 0 || ann_weight_layers >= total_weight {
            return Err(NnError::InvalidConfig {
                reason: format!(
                    "hybrid split needs 0 < ann layers ({ann_weight_layers}) < weight layers ({total_weight})"
                ),
            });
        }
        // Find the layer index where the ANN suffix begins: walk backwards
        // until we have consumed `ann_weight_layers` weight layers, then
        // extend the prefix through the ReLU/quant that belongs to it.
        let layers = net.layers();
        let mut remaining = ann_weight_layers;
        let mut split_at = layers.len();
        for (i, layer) in layers.iter().enumerate().rev() {
            if layer.is_weight_layer() {
                remaining -= 1;
                if remaining == 0 {
                    split_at = i;
                    break;
                }
            }
        }
        let (stages, boundary_scale) = convert_prefix(net, calib, split_at, config)?;
        let ann_part = Network::new(layers[split_at..].to_vec());
        Ok(Self {
            snn_part: SpikingNetwork::new(stages, config.encoding),
            ann_part,
            boundary_scale,
            ann_weight_layers,
        })
    }

    /// Number of weight layers in the ANN suffix (the `k` of "Hyb-k").
    pub fn ann_weight_layers(&self) -> usize {
        self.ann_weight_layers
    }

    /// Activation ceiling at the boundary — the scale the Accumulator
    /// Units multiply accumulated spike rates by.
    pub fn boundary_scale(&self) -> f32 {
        self.boundary_scale
    }

    /// The spiking prefix.
    pub fn snn_part(&self) -> &SpikingNetwork {
        &self.snn_part
    }

    /// The continuous suffix.
    pub fn ann_part(&self) -> &Network {
        &self.ann_part
    }

    /// Runs the hybrid network: simulates the spiking prefix for
    /// `timesteps`, converts boundary spike rates to activations
    /// (`rate · boundary_scale`), then evaluates the ANN suffix once.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn run<R: Rng + ?Sized>(
        &mut self,
        inputs: &Tensor,
        timesteps: usize,
        rng: &mut R,
    ) -> Result<HybridRunResult, NnError> {
        if timesteps == 0 {
            return Err(NnError::InvalidConfig {
                reason: "hybrid run needs at least one timestep".to_string(),
            });
        }
        // The boundary is the *last* stage output of the prefix, which the
        // SNN runner accumulates as its readout: counts of boundary spikes.
        let SnnRunResult {
            output_potentials: boundary_counts,
            stats,
            ..
        } = self.snn_part.run(inputs, timesteps, rng)?;
        // AU behaviour: rate = counts / T, activation = rate · λ_boundary.
        let activations = boundary_counts.scale(self.boundary_scale / timesteps as f32);
        let logits = self.ann_part.forward(&activations)?;
        let predictions = logits.argmax_rows()?;
        Ok(HybridRunResult {
            predictions,
            logits,
            stats,
        })
    }

    /// Classification accuracy of the hybrid model.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    ///
    /// # Panics
    ///
    /// Panics when `labels.len()` differs from the batch size.
    pub fn accuracy<R: Rng + ?Sized>(
        &mut self,
        inputs: &Tensor,
        labels: &[usize],
        timesteps: usize,
        rng: &mut R,
    ) -> Result<f64, NnError> {
        let result = self.run(inputs, timesteps, rng)?;
        assert_eq!(result.predictions.len(), labels.len());
        let correct = result
            .predictions
            .iter()
            .zip(labels)
            .filter(|(p, l)| p == l)
            .count();
        Ok(correct as f64 / labels.len().max(1) as f64)
    }
}

/// Convenience: the layer index at which the suffix of `k` weight layers
/// begins (used by the architecture mapper to split energy accounting).
pub fn suffix_split_index(net: &Network, ann_weight_layers: usize) -> Option<usize> {
    let mut remaining = ann_weight_layers;
    for (i, layer) in net.layers().iter().enumerate().rev() {
        if layer.is_weight_layer() {
            remaining = remaining.checked_sub(1)?;
            if remaining == 0 {
                return Some(i);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;
    use crate::optim::{train, TrainConfig};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(55)
    }

    fn blobs01(n_per: usize, r: &mut rand::rngs::StdRng) -> Dataset {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..2 * n_per {
            let class = i % 2;
            let center = if class == 0 { 0.25 } else { 0.75 };
            data.push((center + r.gen_range(-0.15..0.15)) as f32);
            data.push((1.0 - center + r.gen_range(-0.15..0.15)) as f32);
            labels.push(class);
        }
        Dataset::new(Tensor::from_vec(data, &[2 * n_per, 2]).unwrap(), labels).unwrap()
    }

    fn deep_trained_net(data: &Dataset, r: &mut rand::rngs::StdRng) -> Network {
        let mut net = Network::new(vec![
            Layer::dense(2, 16, r),
            Layer::relu(),
            Layer::dense(16, 8, r),
            Layer::relu(),
            Layer::dense(8, 2, r),
        ]);
        let cfg = TrainConfig::builder().epochs(40).batch_size(10).build();
        train(&mut net, data, &cfg, r).unwrap();
        net
    }

    #[test]
    fn split_partitions_weight_layers() {
        let mut r = rng();
        let data = blobs01(30, &mut r);
        let net = deep_trained_net(&data, &mut r);
        let h = HybridNetwork::split(&net, &data, 1, &ConversionConfig::default()).unwrap();
        assert_eq!(h.ann_weight_layers(), 1);
        assert_eq!(h.ann_part().weight_layer_count(), 1);
        // Prefix holds the other two weight layers.
        let prefix_weights = h
            .snn_part()
            .stages()
            .iter()
            .filter(|s| matches!(s, crate::snn::SnnStage::Synaptic(l) if l.is_weight_layer()))
            .count();
        assert_eq!(prefix_weights, 2);
        assert!(h.boundary_scale() > 0.0);
    }

    #[test]
    fn split_rejects_degenerate_partitions() {
        let mut r = rng();
        let data = blobs01(10, &mut r);
        let net = deep_trained_net(&data, &mut r);
        assert!(HybridNetwork::split(&net, &data, 0, &ConversionConfig::default()).is_err());
        assert!(HybridNetwork::split(&net, &data, 3, &ConversionConfig::default()).is_err());
    }

    #[test]
    fn hybrid_matches_ann_accuracy_with_modest_timesteps() {
        let mut r = rng();
        let data = blobs01(50, &mut r);
        let mut net = deep_trained_net(&data, &mut r);
        let ann_acc = net.accuracy(&data.inputs, &data.labels).unwrap();
        assert!(ann_acc > 0.9);
        let mut h = HybridNetwork::split(&net, &data, 1, &ConversionConfig::default()).unwrap();
        let hyb_acc = h.accuracy(&data.inputs, &data.labels, 150, &mut r).unwrap();
        assert!(
            hyb_acc >= ann_acc - 0.08,
            "hybrid lost too much accuracy: {ann_acc} → {hyb_acc}"
        );
    }

    #[test]
    fn hybrid_beats_pure_snn_at_few_timesteps() {
        // The paper's core hybrid claim: at small T the hybrid model
        // yields higher accuracy than the pure SNN.
        let mut r = rng();
        let data = blobs01(50, &mut r);
        let net = deep_trained_net(&data, &mut r);
        let cfg = ConversionConfig::default();
        let mut snn = crate::convert::ann_to_snn(&net, &data, &cfg).unwrap();
        let mut hyb = HybridNetwork::split(&net, &data, 2, &cfg).unwrap();
        let t = 3; // deliberately starved evidence-integration window
        let mut snn_acc = 0.0;
        let mut hyb_acc = 0.0;
        let reps = 10;
        for _ in 0..reps {
            snn_acc += snn.accuracy(&data.inputs, &data.labels, t, &mut r).unwrap();
            hyb_acc += hyb.accuracy(&data.inputs, &data.labels, t, &mut r).unwrap();
        }
        snn_acc /= reps as f64;
        hyb_acc /= reps as f64;
        assert!(
            hyb_acc >= snn_acc,
            "hybrid ({hyb_acc}) should not trail pure SNN ({snn_acc}) at T={t}"
        );
    }

    #[test]
    fn zero_timesteps_is_rejected() {
        let mut r = rng();
        let data = blobs01(10, &mut r);
        let net = deep_trained_net(&data, &mut r);
        let mut h = HybridNetwork::split(&net, &data, 1, &ConversionConfig::default()).unwrap();
        assert!(h.run(&data.inputs, 0, &mut r).is_err());
    }

    #[test]
    fn suffix_split_index_counts_from_the_back() {
        let mut r = rng();
        let net = Network::new(vec![
            Layer::dense(2, 4, &mut r),
            Layer::relu(),
            Layer::dense(4, 4, &mut r),
            Layer::relu(),
            Layer::dense(4, 2, &mut r),
        ]);
        assert_eq!(suffix_split_index(&net, 1), Some(4));
        assert_eq!(suffix_split_index(&net, 2), Some(2));
        assert_eq!(suffix_split_index(&net, 3), Some(0));
        assert_eq!(suffix_split_index(&net, 4), None);
    }
}
