//! Property-based tests of the neural-network layer: training machinery,
//! quantization and conversion invariants.

use nebula_nn::layer::Layer;
use nebula_nn::quant::quantize_weights_inplace;
use nebula_nn::snn::{IfPopulation, ResetMode};
use nebula_nn::Network;
use nebula_tensor::Tensor;
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #[test]
    fn quantized_weights_stay_on_the_device_grid(
        data in proptest::collection::vec(-3.0f32..3.0, 2..64),
        levels in prop::sample::select(vec![2usize, 4, 8, 16, 32]),
    ) {
        let n = data.len();
        let mut w = Tensor::from_vec(data, &[n]).unwrap();
        let clip = quantize_weights_inplace(&mut w, levels, 1.0);
        let step = 2.0 * clip / (levels - 1) as f32;
        for &v in w.data() {
            let k = (v + clip) / step;
            prop_assert!((k - k.round()).abs() < 1e-3, "{} off-grid (clip {})", v, clip);
            prop_assert!(v.abs() <= clip * (1.0 + 1e-5));
        }
    }

    #[test]
    fn quantization_error_is_bounded_by_half_step(
        data in proptest::collection::vec(-1.0f32..1.0, 2..64),
    ) {
        let n = data.len();
        let orig = Tensor::from_vec(data, &[n]).unwrap();
        let mut q = orig.clone();
        let clip = quantize_weights_inplace(&mut q, 16, 1.0);
        let step = 2.0 * clip / 15.0;
        for (o, v) in orig.data().iter().zip(q.data()) {
            prop_assert!((o - v).abs() <= step / 2.0 + 1e-5);
        }
    }

    #[test]
    fn per_element_error_is_bounded_by_the_level_step(
        data in proptest::collection::vec(-1.0f32..1.0, 8..64),
    ) {
        // The offset (device) grids of different level counts are not
        // nested, so per-vector totals are not strictly monotone — but
        // every element's error is bounded by half its grid step, which
        // shrinks with the level count.
        let n = data.len();
        let orig = Tensor::from_vec(data, &[n]).unwrap();
        for levels in [4usize, 16, 32] {
            let mut q = orig.clone();
            let clip = quantize_weights_inplace(&mut q, levels, 1.0);
            let step = 2.0 * clip / (levels - 1) as f32;
            for (o, v) in orig.data().iter().zip(q.data()) {
                prop_assert!((o - v).abs() <= step / 2.0 + 1e-5);
            }
        }
        // And the 32-level grid beats the binary grid overall.
        let err = |levels: usize| {
            let mut q = orig.clone();
            quantize_weights_inplace(&mut q, levels, 1.0);
            orig.sub(&q).unwrap().map(f32::abs).sum()
        };
        prop_assert!(err(32) <= err(2) + 1e-4);
    }

    #[test]
    fn quantization_is_monotone(
        data in proptest::collection::vec(-2.0f32..2.0, 2..48),
        levels in prop::sample::select(vec![2usize, 4, 8, 16]),
    ) {
        // Rounding onto a shared uniform grid preserves order.
        let n = data.len();
        let orig = Tensor::from_vec(data, &[n]).unwrap();
        let mut q = orig.clone();
        quantize_weights_inplace(&mut q, levels, 1.0);
        for i in 0..n {
            for j in 0..n {
                if orig.data()[i] <= orig.data()[j] {
                    prop_assert!(
                        q.data()[i] <= q.data()[j] + 1e-6,
                        "order broken: q({}) = {} > q({}) = {}",
                        orig.data()[i], q.data()[i], orig.data()[j], q.data()[j]
                    );
                }
            }
        }
    }

    #[test]
    fn quantization_never_panics_on_arbitrary_finite_inputs(
        data in proptest::collection::vec(-1e30f32..1e30, 1..48),
        levels in prop::sample::select(vec![0usize, 2, 3, 16, 255]),
        percentile in 0.0f64..1.0,
    ) {
        // Degenerate inputs (all equal, all zero, huge magnitudes, tiny
        // vectors) and degenerate configs (levels = 0 = full precision,
        // odd level counts, extreme percentiles) must never panic or
        // produce non-finite weights.
        let n = data.len();
        let orig = Tensor::from_vec(data, &[n]).unwrap();
        let mut w = orig.clone();
        let clip = quantize_weights_inplace(&mut w, levels, percentile);
        prop_assert!(clip.is_finite() && clip > 0.0);
        if levels == 0 {
            // Full precision: weights pass through untouched.
            prop_assert_eq!(w.data(), orig.data());
        } else {
            for &v in w.data() {
                prop_assert!(v.is_finite());
                prop_assert!(v.abs() <= clip * (1.0 + 1e-5));
            }
        }
    }

    #[test]
    fn quantize_dequantize_roundtrip_recovers_grid_codes(
        data in proptest::collection::vec(-1.0f32..1.0, 2..48),
    ) {
        // quantize → (dequantize to codes) → requantize is the identity:
        // the grid is a fixed point of the quantizer.
        let n = data.len();
        let mut q = Tensor::from_vec(data, &[n]).unwrap();
        quantize_weights_inplace(&mut q, 16, 1.0);
        let mut q2 = q.clone();
        quantize_weights_inplace(&mut q2, 16, 1.0);
        for (a, b) in q.data().iter().zip(q2.data()) {
            prop_assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn if_rate_approximates_input_rate(rate in 0.05f32..0.95) {
        // The conversion identity: IF with v_th 1 fires at the input rate.
        let mut pop = IfPopulation::new(1.0, ResetMode::Subtract);
        let t = 400;
        for _ in 0..t {
            pop.step(&Tensor::full(&[1], rate)).unwrap();
        }
        let measured = pop.total_spikes() as f64 / t as f64;
        prop_assert!((measured - rate as f64).abs() < 0.02, "{} vs {}", measured, rate);
    }

    #[test]
    fn forward_is_deterministic(seed in 0u64..500) {
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        let mut net = Network::new(vec![
            Layer::dense(4, 8, &mut r),
            Layer::relu(),
            Layer::dense(8, 3, &mut r),
        ]);
        let x = Tensor::rand_uniform(&[2, 4], -1.0, 1.0, &mut r);
        let y1 = net.forward(&x).unwrap();
        let y2 = net.forward(&x).unwrap();
        prop_assert_eq!(y1, y2);
    }

    #[test]
    fn relu_network_output_is_scale_covariant(
        seed in 0u64..200,
        k in 0.1f32..5.0,
    ) {
        // Bias-free ReLU networks are positively homogeneous:
        // f(kx) = k·f(x). This is the identity ANN→SNN threshold
        // balancing relies on.
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        let mut net = Network::new(vec![
            Layer::dense(3, 6, &mut r),
            Layer::relu(),
            Layer::dense(6, 2, &mut r),
        ]);
        // Biases are zero-initialized by construction.
        let x = Tensor::rand_uniform(&[1, 3], 0.0, 1.0, &mut r);
        let y = net.forward(&x).unwrap();
        let yk = net.forward(&x.scale(k)).unwrap();
        for (a, b) in y.data().iter().zip(yk.data()) {
            prop_assert!((a * k - b).abs() < 1e-3 * b.abs().max(1.0), "{} vs {}", a * k, b);
        }
    }
}
