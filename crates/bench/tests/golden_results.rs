//! Golden-file regression tests: re-run every deterministic recorded
//! experiment and diff its stdout against the recorded `results/*.txt`,
//! so model drift is caught by `cargo test` instead of manual diffing.
//!
//! Only the 14 RNG-free experiments are pinned byte-for-byte here. The
//! RNG-dependent experiments (training-based accuracy studies) are
//! deterministic too, but cost minutes of training each; their clean
//! corners are covered by `fault_campaign`'s zero-fault assertion and
//! the seeded-determinism suite.

use std::process::Command;

/// Runs a recorded experiment binary and asserts byte-identical stdout
/// against its golden file.
fn assert_matches_golden(bin: &str, exe: &str) {
    let golden_path = format!("{}/../../results/{bin}.txt", env!("CARGO_MANIFEST_DIR"));
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("missing golden file {golden_path}: {e}"));
    let out = Command::new(exe)
        .output()
        .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} exited with {:?}:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("experiment output is UTF-8");
    assert_eq!(
        stdout, golden,
        "{bin} drifted from its recorded output ({golden_path})"
    );
}

macro_rules! golden {
    ($($name:ident),* $(,)?) => {$(
        #[test]
        fn $name() {
            assert_matches_golden(stringify!($name), env!(concat!("CARGO_BIN_EXE_", stringify!($name))));
        }
    )*};
}

golden!(
    ablate_hierarchy,
    ablate_morphable,
    ablate_replication,
    ablate_tmr,
    chip_layout,
    fig01_device,
    fig12_isaac_layers,
    fig13a_isaac_avg,
    fig13b_inxs_layers,
    fig14_peak_power,
    fig15_vgg_breakdown,
    fig16_all_breakdown,
    fig17_hybrid_tradeoff,
    tab03_components,
);
