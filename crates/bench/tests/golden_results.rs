//! Golden-file regression tests: re-run every deterministic recorded
//! experiment and diff its stdout against the recorded `results/*.txt`,
//! so model drift is caught by `cargo test` instead of manual diffing.
//!
//! Only the 14 RNG-free experiments are pinned byte-for-byte here. The
//! RNG-dependent experiments (training-based accuracy studies) are
//! deterministic too, but cost minutes of training each; their clean
//! corners are covered by `fault_campaign`'s zero-fault assertion and
//! the seeded-determinism suite.
//!
//! Each experiment is additionally re-run with
//! `NEBULA_KERNEL_PATH=quantized` pinning every crossbar to the
//! bit-packed 4-bit kernel tier. The quantized path's differential
//! outputs are bitwise identical to the default and its read energy
//! uses the same per-row-sum formulation as the default vectorized
//! kernel, so *all* recorded columns — classifications and energy alike
//! — must stay byte-for-byte; no looser tolerance is needed.
//!
//! The 14 table binaries evaluate the analytical energy model and never
//! construct a crossbar, so their `quantized` reruns only pin that the
//! env override doesn't perturb anything process-wide. The recorded
//! experiment that actually runs inference *through* the crossbar
//! models is `analog_validation` (RNG-dependent, but byte-stable under
//! the vendored rand — it is regenerated whenever the random stream
//! shifts, see CHANGES.md PR 1); the [`analog_kernel_paths`] module
//! re-runs it under every kernel path as the end-to-end golden check
//! that genuinely exercises the scalar, vectorized and quantized tiers.

use std::process::Command;

/// Runs a recorded experiment binary and asserts byte-identical stdout
/// against its golden file, optionally pinning the crossbar kernel path
/// through the `NEBULA_KERNEL_PATH` environment override.
fn assert_matches_golden(bin: &str, exe: &str, kernel_path: Option<&str>) {
    let golden_path = format!("{}/../../results/{bin}.txt", env!("CARGO_MANIFEST_DIR"));
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("missing golden file {golden_path}: {e}"));
    let mut cmd = Command::new(exe);
    if let Some(path) = kernel_path {
        cmd.env("NEBULA_KERNEL_PATH", path);
    }
    let out = cmd
        .output()
        .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} (kernel path {kernel_path:?}) exited with {:?}:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("experiment output is UTF-8");
    assert_eq!(
        stdout, golden,
        "{bin} (kernel path {kernel_path:?}) drifted from its recorded output ({golden_path})"
    );
}

macro_rules! golden {
    ($($name:ident),* $(,)?) => {$(
        #[test]
        fn $name() {
            assert_matches_golden(
                stringify!($name),
                env!(concat!("CARGO_BIN_EXE_", stringify!($name))),
                None,
            );
        }
    )*
        mod quantized {
            $(
                #[test]
                fn $name() {
                    super::assert_matches_golden(
                        stringify!($name),
                        env!(concat!("CARGO_BIN_EXE_", stringify!($name))),
                        Some("quantized"),
                    );
                }
            )*
        }
    };
}

golden!(
    ablate_hierarchy,
    ablate_morphable,
    ablate_replication,
    ablate_tmr,
    chip_layout,
    fig01_device,
    fig12_isaac_layers,
    fig13a_isaac_avg,
    fig13b_inxs_layers,
    fig14_peak_power,
    fig15_vgg_breakdown,
    fig16_all_breakdown,
    fig17_hybrid_tradeoff,
    tab03_components,
);

/// Golden reruns that drive real crossbar inference (MLP + LeNet
/// accuracy through `compile_ann`, including the 10% device-mismatch
/// leg) under each pinned kernel path. Outputs must stay byte-for-byte
/// on every path: differential dots are bitwise identical across tiers
/// and the printed energies come from the per-row-sum chain shared by
/// the vectorized and quantized paths. (`sec4d_noise` also exercises
/// the crossbars but costs minutes per debug run, so it is left to the
/// seeded-determinism and equivalence suites.)
mod analog_kernel_paths {
    const EXE: &str = env!("CARGO_BIN_EXE_analog_validation");

    #[test]
    fn analog_validation_scalar() {
        super::assert_matches_golden("analog_validation", EXE, Some("scalar"));
    }

    #[test]
    fn analog_validation_vectorized() {
        super::assert_matches_golden("analog_validation", EXE, Some("vectorized"));
    }

    #[test]
    fn analog_validation_quantized() {
        super::assert_matches_golden("analog_validation", EXE, Some("quantized"));
    }
}
