//! Seeded-determinism regression tests: every RNG-dependent path in the
//! stack — device variation, fault sampling, crossbar fault injection
//! and SNN spike encoding — must produce byte-identical results for a
//! fixed seed across repeated runs, and the parallel evaluation harness
//! must produce identical results regardless of worker count.
//!
//! Worker-count invariance is tested here through the explicit
//! `*_with_workers` entry points; the `NEBULA_THREADS` environment
//! override that feeds the implicit versions is pinned by its own test
//! below and exercised end-to-end by the CI test matrix, which runs the
//! whole suite under `NEBULA_THREADS=1` and `NEBULA_THREADS=4`.

use nebula_bench::par::par_map_with_workers;
use nebula_core::energy::EnergyModel;
use nebula_core::engine::{par_evaluate_suite_with_workers, SuiteJob, SuiteMode};
use nebula_crossbar::{AtomicCrossbar, CrossbarConfig, Mode};
use nebula_device::fault::{FaultClass, FaultModel, NonidealityModel};
use nebula_device::units::Seconds;
use nebula_device::variation::VariationModel;
use nebula_nn::convert::{ann_to_snn, ConversionConfig};
use nebula_nn::{Dataset, Layer, Network};
use nebula_tensor::Tensor;
use nebula_workloads::zoo;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A fault model with every class active, so one sampling stream covers
/// all five per-class code paths.
fn all_class_faults(rate: f64) -> FaultModel {
    FaultClass::ALL
        .iter()
        .fold(FaultModel::none(), |m, &c| m.with_class_rate(c, rate))
}

#[test]
fn variation_stream_is_bit_identical_across_seeded_runs() {
    let model = VariationModel::new(0.10);
    let run = || {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut f32s: Vec<f32> = (0..512).map(|i| (i as f32 - 256.0) / 77.0).collect();
        model.perturb_slice_f32(&mut f32s, &mut rng);
        let f64s: Vec<u64> = (0..64)
            .map(|i| model.perturb(i as f64 * 0.01 - 0.3, &mut rng).to_bits())
            .collect();
        (f32s.iter().map(|v| v.to_bits()).collect::<Vec<u32>>(), f64s)
    };
    assert_eq!(run(), run());
}

#[test]
fn fault_sampling_stream_is_identical_across_seeded_runs() {
    let model = all_class_faults(0.04);
    let run = || {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        (0..20_000)
            .map(|_| model.sample_cell(&mut rng))
            .collect::<Vec<_>>()
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b);
    // The stream is non-trivial: faults of more than one class occurred.
    let classes: std::collections::HashSet<_> =
        a.iter().flatten().map(|f| f.class().name()).collect();
    assert!(classes.len() >= 4, "only {classes:?} sampled");
}

#[test]
fn crossbar_fault_injection_is_identical_across_seeded_runs() {
    let build = || {
        let mut cfg = CrossbarConfig::paper_default(Mode::Ann);
        cfg.m = 32;
        let mut x = AtomicCrossbar::new(cfg).unwrap();
        x.program(&vec![vec![0.25; 32]; 32], 1.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let injected = x.inject_faults(&all_class_faults(0.05), &mut rng);
        (x, injected)
    };
    let (a, na) = build();
    let (b, nb) = build();
    assert_eq!(na, nb);
    assert!(na > 0, "no faults injected at 25% total rate on 1024 cells");
    for r in 0..32 {
        for c in 0..32 {
            assert_eq!(a.cell_fault(r, c), b.cell_fault(r, c), "cell ({r}, {c})");
        }
    }
}

#[test]
fn weight_space_fault_application_is_bit_identical_across_seeded_runs() {
    let model = NonidealityModel::faults_only(all_class_faults(0.03));
    let run = || {
        let mut rng = ChaCha8Rng::seed_from_u64(0xFA17);
        let mut w: Vec<f32> = (0..1024)
            .map(|i| ((i * 37) % 101) as f32 / 101.0 - 0.5)
            .collect();
        let n = model.apply_weight_slice_f32(&mut w, 0.5, 16, Seconds(30.0), &mut rng);
        (w.iter().map(|v| v.to_bits()).collect::<Vec<u32>>(), n)
    };
    assert_eq!(run(), run());
}

#[test]
fn snn_encoding_and_run_are_identical_across_seeded_runs() {
    // Poisson input encoding is the RNG path inside the spiking
    // simulator; a fixed seed must reproduce spike trains, potentials
    // and predictions exactly.
    let mut net_rng = rand::rngs::StdRng::seed_from_u64(11);
    let net = Network::new(vec![
        Layer::dense(6, 12, &mut net_rng),
        Layer::relu(),
        Layer::dense(12, 4, &mut net_rng),
    ]);
    let calib = Dataset::new(
        Tensor::rand_uniform(&[16, 6], 0.0, 1.0, &mut net_rng),
        vec![0; 16],
    )
    .unwrap();
    let snn = ann_to_snn(&net, &calib, &ConversionConfig::default()).unwrap();
    let x = Tensor::rand_uniform(&[5, 6], 0.0, 1.0, &mut net_rng);
    let run = || {
        let mut sim = snn.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        sim.run(&x, 80, &mut rng).unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.predictions, b.predictions);
    assert_eq!(a.output_potentials, b.output_potentials);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn suite_evaluation_is_identical_across_worker_counts() {
    let model = EnergyModel::default();
    let descriptors = zoo::with_default_activities(zoo::vgg13(10));
    let jobs = vec![
        SuiteJob::new("VGG-13", descriptors.clone(), SuiteMode::Ann),
        SuiteJob::new(
            "VGG-13",
            descriptors.clone(),
            SuiteMode::Snn { timesteps: 150 },
        ),
        SuiteJob::new("VGG-13", descriptors, SuiteMode::Snn { timesteps: 300 }),
    ];
    let sequential = par_evaluate_suite_with_workers(&model, &jobs, 1);
    for workers in [2, 4, 8] {
        let parallel = par_evaluate_suite_with_workers(&model, &jobs, workers);
        assert_eq!(sequential, parallel, "workers={workers}");
    }
}

#[test]
fn per_item_seeded_monte_carlo_is_identical_across_worker_counts() {
    // The fault-campaign pattern: each item derives its own RNG from its
    // index, so the fan-out is reproducible at any parallelism.
    let items: Vec<u64> = (0..48).collect();
    let draw = |&i: &u64| {
        let mut rng = ChaCha8Rng::seed_from_u64(0xFA17 + i);
        all_class_faults(0.05)
            .sample_cell(&mut rng)
            .map(|f| format!("{f:?}"))
    };
    let one = par_map_with_workers(&items, 1, draw);
    for workers in [4, 16] {
        assert_eq!(
            one,
            par_map_with_workers(&items, workers, draw),
            "workers={workers}"
        );
    }
}

/// Subprocess probe for the env-override tests below. Trivially passes
/// in a normal suite run; when re-invoked by
/// [`nebula_threads_env_override_controls_worker_count`] with
/// `NEBULA_TEST_EXPECT_WORKERS` set, it asserts — in a process whose
/// environment was fixed *before* any thread existed — that both the
/// per-call configured count and the pool-creation snapshot honor
/// `NEBULA_THREADS`.
#[test]
fn nebula_threads_subprocess_probe() {
    let Ok(expect) = std::env::var("NEBULA_TEST_EXPECT_WORKERS") else {
        return;
    };
    let expect: usize = expect
        .parse()
        .expect("NEBULA_TEST_EXPECT_WORKERS not a usize");
    assert_eq!(nebula_tensor::par::worker_count(), expect);
    assert_eq!(nebula_tensor::pool::size(), expect);
}

#[test]
fn nebula_threads_env_override_controls_worker_count() {
    // `std::env::set_var` in a multithreaded test binary is unsound
    // (and racy against the lazily-spawned worker pool), so the
    // override is probed in spawned subprocesses instead: each child
    // re-runs this binary filtered to `nebula_threads_subprocess_probe`
    // with `NEBULA_THREADS` fixed in its environment from birth.
    let exe = std::env::current_exe().expect("test binary path");
    for workers in ["1", "3"] {
        let out = std::process::Command::new(&exe)
            .args(["nebula_threads_subprocess_probe", "--exact"])
            .env("NEBULA_THREADS", workers)
            .env("NEBULA_TEST_EXPECT_WORKERS", workers)
            .output()
            .expect("spawn subprocess probe");
        assert!(
            out.status.success(),
            "NEBULA_THREADS={workers} probe failed:\n{}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr),
        );
    }
    // An unset override falls back to available parallelism (>= 1).
    let out = std::process::Command::new(&exe)
        .args(["nebula_threads_subprocess_probe", "--exact"])
        .env_remove("NEBULA_THREADS")
        .env_remove("NEBULA_TEST_EXPECT_WORKERS")
        .output()
        .expect("spawn subprocess probe");
    assert!(out.status.success());
}
