//! Criterion micro-benchmarks of the simulation kernels: analog crossbar
//! evaluation, convolution lowering, spiking simulation steps and the
//! whole-chip analytical energy evaluation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nebula_core::energy::EnergyModel;
use nebula_core::engine::{evaluate_ann, evaluate_snn};
use nebula_core::mapper::map_network;
use nebula_crossbar::{AtomicCrossbar, CrossbarConfig, KernelPath, Mode, SuperTile};
use nebula_nn::layer::Layer;
use nebula_nn::snn::{IfPopulation, ResetMode};
use nebula_tensor::{conv2d, im2col, ConvGeometry, Tensor};
use nebula_workloads::zoo;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_crossbar(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut xbar = AtomicCrossbar::new(CrossbarConfig::paper_default(Mode::Ann)).unwrap();
    let weights: Vec<Vec<f64>> = (0..128)
        .map(|_| (0..128).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    xbar.program(&weights, 1.0).unwrap();
    let inputs: Vec<f64> = (0..128).map(|_| rng.gen_range(0.0..1.0)).collect();
    c.bench_function("atomic_crossbar_dot_128x128", |b| {
        b.iter(|| xbar.dot(black_box(&inputs)).unwrap())
    });

    let mut st = SuperTile::new(CrossbarConfig::paper_default(Mode::Snn)).unwrap();
    let kernel: Vec<Vec<f64>> = (0..2000).map(|_| vec![rng.gen_range(-1.0..1.0)]).collect();
    st.program(&kernel, 1.0).unwrap();
    let spikes: Vec<f64> = (0..2000)
        .map(|_| if rng.gen_bool(0.2) { 1.0 } else { 0.0 })
        .collect();
    c.bench_function("supertile_dot_h2_rf2000", |b| {
        b.iter(|| st.dot(black_box(&spikes)).unwrap())
    });
}

fn bench_tensor(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let a = Tensor::rand_uniform(&[64, 256], -1.0, 1.0, &mut rng);
    let b_mat = Tensor::rand_uniform(&[256, 64], -1.0, 1.0, &mut rng);
    c.bench_function("matmul_64x256x64", |b| {
        b.iter(|| a.matmul(black_box(&b_mat)).unwrap())
    });

    let x = Tensor::rand_uniform(&[4, 8, 16, 16], 0.0, 1.0, &mut rng);
    let w = Tensor::rand_uniform(&[16, 8, 3, 3], -1.0, 1.0, &mut rng);
    let geom = ConvGeometry::same(3);
    c.bench_function("conv2d_4x8x16x16_k3", |b| {
        b.iter(|| conv2d(black_box(&x), &w, None, geom).unwrap())
    });
    c.bench_function("im2col_4x8x16x16_k3", |b| {
        b.iter(|| im2col(black_box(&x), geom).unwrap())
    });
}

fn bench_snn(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let input = Tensor::rand_uniform(&[16, 4096], 0.0, 0.3, &mut rng);
    let mut pop = IfPopulation::new(1.0, ResetMode::Subtract);
    c.bench_function("if_population_step_64k_neurons", |b| {
        b.iter(|| pop.step(black_box(&input)).unwrap())
    });

    let mut dense = Layer::dense(256, 128, &mut rng);
    let spikes =
        Tensor::rand_uniform(&[16, 256], 0.0, 1.0, &mut rng)
            .map(|v| if v < 0.2 { 1.0 } else { 0.0 });
    c.bench_function("sparse_dense_forward_16x256", |b| {
        b.iter(|| dense.forward(black_box(&spikes), false).unwrap())
    });
}

/// The two crossbar inner-loop kernels ([`KernelPath`]) head to head on
/// dense and spike-sparse GEMV, plus the packed f32 GEMM against its
/// naive pinned reference at im2col shapes from the LeNet and VGG
/// workloads. Summarized in `EXPERIMENTS.md` ("Kernel microbenchmarks").
fn bench_kernel_paths(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let paths = [
        ("vectorized", KernelPath::Vectorized),
        ("scalar", KernelPath::Scalar),
    ];

    // Dense GEMV: full 128×128 differential array, analog input drive.
    let mut xbar = AtomicCrossbar::new(CrossbarConfig::paper_default(Mode::Ann)).unwrap();
    let weights: Vec<Vec<f64>> = (0..128)
        .map(|_| (0..128).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    xbar.program(&weights, 1.0).unwrap();
    let inputs: Vec<f64> = (0..128).map(|_| rng.gen_range(0.0..1.0)).collect();
    for (label, path) in paths {
        xbar.set_kernel_path(path);
        c.bench_function(&format!("gemv_dense_128x128_{label}"), |b| {
            b.iter(|| xbar.dot(black_box(&inputs)).unwrap())
        });
    }

    // Spike-sparse GEMV at 5 / 20 / 80 % row activity (SNN mode drives
    // active rows at full read voltage; silent rows are skipped).
    let mut snn_xbar = AtomicCrossbar::new(CrossbarConfig::paper_default(Mode::Snn)).unwrap();
    snn_xbar.program(&weights, 1.0).unwrap();
    for activity in [5u32, 20, 80] {
        let active: Vec<usize> = (0..128)
            .filter(|_| rng.gen_bool(f64::from(activity) / 100.0))
            .collect();
        for (label, path) in paths {
            snn_xbar.set_kernel_path(path);
            c.bench_function(
                &format!("gemv_sparse_128x128_act{activity:02}_{label}"),
                |b| b.iter(|| snn_xbar.dot_sparse(black_box(&active)).unwrap()),
            );
        }
    }

    // Packed f32 GEMM at im2col shapes: LeNet conv2 (24×24 patches of a
    // 6-channel 5×5 window onto 16 kernels) and the VGG/10 bench's
    // second conv (16×16 patches of a 16-channel 3×3 window onto 16
    // kernels), against the naive pinned reference.
    for (name, m, k, n) in [
        ("lenet_conv2", 576usize, 150usize, 16usize),
        ("vgg_conv2", 2048, 144, 16),
    ] {
        let a = Tensor::rand_uniform(&[m, k], -1.0, 1.0, &mut rng);
        let b_mat = Tensor::rand_uniform(&[k, n], -1.0, 1.0, &mut rng);
        c.bench_function(&format!("gemm_{name}_{m}x{k}x{n}_packed"), |b| {
            b.iter(|| a.matmul(black_box(&b_mat)).unwrap())
        });
        c.bench_function(&format!("gemm_{name}_{m}x{k}x{n}_reference"), |b| {
            b.iter(|| nebula_tensor::gemm::matmul_reference(&a, black_box(&b_mat)).unwrap())
        });
        // Mostly-zero rows (spike-train matrices): near the threshold the
        // dense axpy still wins — the skip branch only pays once rows are
        // nearly silent, as spiking im2col patches are (≥ 99 % zeros).
        for (tag, cut) in [("80pct_zero", 0.6f32), ("98pct_zero", 0.96)] {
            let sparse_a = a.map(|v| if v < cut { 0.0 } else { v });
            c.bench_function(&format!("gemm_{name}_{m}x{k}x{n}_{tag}"), |b| {
                b.iter(|| sparse_a.matmul(black_box(&b_mat)).unwrap())
            });
        }
    }
}

fn bench_architecture(c: &mut Criterion) {
    let model = EnergyModel::default();
    let vgg = zoo::vgg13(10);
    c.bench_function("map_network_vgg13", |b| {
        b.iter(|| map_network(black_box(&vgg)))
    });
    c.bench_function("evaluate_ann_vgg13", |b| {
        b.iter(|| evaluate_ann(&model, black_box(&vgg)))
    });
    c.bench_function("evaluate_snn_vgg13_t300", |b| {
        b.iter(|| evaluate_snn(&model, black_box(&vgg), 300))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_crossbar, bench_tensor, bench_snn, bench_kernel_paths, bench_architecture
}
criterion_main!(benches);
