//! Order-preserving parallel map for the bench harness.
//!
//! The figure/table binaries fan independent per-workload computations
//! (baseline comparisons, scaled-model training) out across a scoped
//! thread pool. Each item is mapped by exactly one worker and results
//! come back **in item order**, so output is identical to a sequential
//! `iter().map()` — only wall-clock time changes.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Maps `f` over `items` on a scoped thread pool sized by
/// [`nebula_tensor::par::worker_count`], returning results in item
/// order.
///
/// # Panics
///
/// Panics of `f` are propagated.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with_workers(items, nebula_tensor::par::worker_count(), f)
}

/// [`par_map`] with an explicit worker count.
///
/// # Panics
///
/// Panics of `f` are propagated.
pub fn par_map_with_workers<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    // Items vary in cost, so workers pull indices from a shared counter
    // rather than taking fixed chunks.
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(items.len(), || None);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (next, f) = (&next, &f);
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("par_map worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every item index was claimed by exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for workers in [1, 2, 7, 32] {
            let out = par_map_with_workers(&items, workers, |&x| x * x);
            let expected: Vec<usize> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expected, "workers={workers}");
        }
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[41u32], |&x| x + 1), vec![42]);
    }
}
