//! Order-preserving parallel map for the bench harness.
//!
//! The figure/table binaries fan independent per-workload computations
//! (baseline comparisons, scaled-model training) out across the
//! persistent worker pool ([`nebula_tensor::pool`]). Each item is mapped
//! by exactly one worker and results come back **in item order**, so
//! output is identical to a sequential `iter().map()` — only wall-clock
//! time changes.

/// Maps `f` over `items` on the persistent pool, split by the pool's
/// size snapshot ([`nebula_tensor::pool::size`]), returning results in
/// item order.
///
/// # Panics
///
/// Panics of `f` are propagated.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with_workers(items, nebula_tensor::pool::size(), f)
}

/// [`par_map`] with an explicit worker count.
///
/// # Panics
///
/// Panics of `f` are propagated.
pub fn par_map_with_workers<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    // Items vary in cost, so the pool's indexed map pulls indices from a
    // shared counter rather than taking fixed chunks.
    nebula_tensor::pool::par_map_indexed(items.len(), workers, |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for workers in [1, 2, 7, 32] {
            let out = par_map_with_workers(&items, workers, |&x| x * x);
            let expected: Vec<usize> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expected, "workers={workers}");
        }
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[41u32], |&x| x + 1), vec![42]);
    }
}
