//! Minimal aligned-text table rendering for experiment output.

/// One table row: a list of cell strings.
pub type Row = Vec<String>;

/// Prints a titled, column-aligned table to stdout.
///
/// # Examples
///
/// ```
/// use nebula_bench::table::print_table;
///
/// print_table(
///     "Demo",
///     &["name", "value"],
///     &[vec!["alpha".to_string(), "1.0".to_string()]],
/// );
/// ```
pub fn print_table(title: &str, headers: &[&str], rows: &[Row]) {
    println!("\n=== {title} ===");
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate().take(cols) {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    line(&rule);
    for row in rows {
        line(row);
    }
}

/// Formats a ratio like `7.9x`.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a percentage like `91.60`.
pub fn pct(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats an energy in engineering notation (µJ granularity).
pub fn uj(joules: f64) -> String {
    format!("{:.3} uJ", joules * 1e6)
}

/// Formats a power in milliwatts.
pub fn mw(watts: f64) -> String {
    format!("{:.3} mW", watts * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(7.903), "7.90x");
        assert_eq!(pct(91.6), "91.60");
        assert_eq!(uj(1.5e-6), "1.500 uJ");
        assert_eq!(mw(0.0123), "12.300 mW");
    }

    #[test]
    fn print_table_handles_ragged_rows() {
        // Smoke test: must not panic on rows shorter/longer than headers.
        print_table(
            "t",
            &["a", "b"],
            &[vec!["1".into()], vec!["1".into(), "2".into(), "3".into()]],
        );
    }
}
