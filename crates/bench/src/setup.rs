//! Shared experiment setup: synthetic datasets and trained scaled models.
//!
//! Every accuracy experiment (Tables I–II, Figs. 4, 9, 10, §IV-D) starts
//! from the same recipe: generate a seeded synthetic dataset matched to
//! the paper benchmark's dataset family, train the scaled version of the
//! benchmark topology, and hand back the split data.

use nebula_nn::optim::{train, Dataset, TrainConfig};
use nebula_nn::Network;
use nebula_workloads::scaled;
use nebula_workloads::synthetic::{generate, split, SyntheticConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The scaled workloads the accuracy experiments use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// 3-layer MLP on glyphs (MNIST-class).
    Mlp,
    /// Scaled LeNet-5 on glyphs.
    Lenet,
    /// Scaled VGG on 10-class textures (CIFAR-10-class).
    Vgg10,
    /// Scaled VGG on 20-class textures (CIFAR-100-class).
    Vgg20,
    /// Scaled VGG with batch norm on 10-class textures.
    VggBn,
    /// Scaled MobileNet on 10-class textures.
    Mobilenet10,
    /// Scaled MobileNet on 20-class textures.
    Mobilenet20,
    /// Scaled SVHN net on cluttered glyphs.
    Svhn,
}

impl Workload {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Mlp => "MLP",
            Workload::Lenet => "LeNet",
            Workload::Vgg10 => "VGG/10",
            Workload::Vgg20 => "VGG/20",
            Workload::VggBn => "VGG-BN/10",
            Workload::Mobilenet10 => "MobileNet/10",
            Workload::Mobilenet20 => "MobileNet/20",
            Workload::Svhn => "SVHN-Net",
        }
    }

    /// Class count of the matched dataset.
    pub fn classes(self) -> usize {
        match self {
            Workload::Vgg20 | Workload::Mobilenet20 => 20,
            _ => 10,
        }
    }

    fn dataset_config(self, samples: usize) -> SyntheticConfig {
        match self {
            Workload::Mlp | Workload::Lenet => SyntheticConfig::glyphs(16, samples),
            Workload::Svhn => SyntheticConfig::cluttered(16, samples),
            _ => SyntheticConfig::textures(16, self.classes(), samples),
        }
    }

    fn build(self, rng: &mut ChaCha8Rng) -> Network {
        match self {
            Workload::Mlp => scaled::scaled_mlp(16, 10, rng),
            Workload::Lenet => scaled::scaled_lenet(16, 10, rng),
            Workload::Vgg10 => scaled::scaled_vgg(16, 10, rng),
            Workload::Vgg20 => scaled::scaled_vgg(16, 20, rng),
            Workload::VggBn => scaled::scaled_vgg_bn(16, 10, rng),
            Workload::Mobilenet10 => scaled::scaled_mobilenet(16, 10, rng),
            Workload::Mobilenet20 => scaled::scaled_mobilenet(16, 20, rng),
            Workload::Svhn => scaled::scaled_svhn(16, 10, rng),
        }
    }
}

/// A trained scaled model plus its data splits.
#[derive(Debug, Clone)]
pub struct Trained {
    /// The trained network.
    pub net: Network,
    /// Training split.
    pub train: Dataset,
    /// Held-out evaluation split.
    pub test: Dataset,
    /// Training-set accuracy after the last epoch.
    pub train_accuracy: f64,
}

/// Generates data, builds and trains the workload. Fully deterministic
/// for a given `(workload, samples, epochs)` triple.
///
/// # Panics
///
/// Panics when dataset generation or training fails (these are
/// experiment-setup bugs, not runtime conditions).
pub fn trained(workload: Workload, samples: usize, epochs: usize) -> Trained {
    let data = generate(&workload.dataset_config(samples)).expect("dataset generation");
    let train_count = samples * 4 / 5;
    let (train_set, test_set) = split(&data, train_count);
    let mut rng = ChaCha8Rng::seed_from_u64(0xBE9C + workload as u64);
    let mut net = workload.build(&mut rng);
    let cfg = TrainConfig::builder()
        .epochs(epochs)
        .batch_size(32)
        .learning_rate(0.02)
        .lr_decay(0.95)
        .build();
    let reports = train(&mut net, &train_set, &cfg, &mut rng).expect("training");
    Trained {
        net,
        train: train_set,
        test: test_set,
        train_accuracy: reports.last().map_or(0.0, |r| r.accuracy),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_trains_above_chance_quickly() {
        let t = trained(Workload::Mlp, 300, 12);
        assert!(
            t.train_accuracy > 0.5,
            "MLP stuck at {:.2}",
            t.train_accuracy
        );
        let acc = t
            .net
            .clone()
            .accuracy(&t.test.inputs, &t.test.labels)
            .unwrap();
        assert!(acc > 0.4, "test accuracy {acc:.2} too low");
    }

    #[test]
    fn setup_is_deterministic() {
        let a = trained(Workload::Mlp, 120, 3);
        let b = trained(Workload::Mlp, 120, 3);
        assert_eq!(a.train_accuracy, b.train_accuracy);
        assert_eq!(a.train.labels, b.train.labels);
    }

    #[test]
    fn workload_metadata() {
        assert_eq!(Workload::Vgg20.classes(), 20);
        assert_eq!(Workload::Mlp.classes(), 10);
        assert_eq!(Workload::Svhn.name(), "SVHN-Net");
    }
}
