//! The sparsity–energy frontier: event-driven SNN evaluation vs the
//! dense ANN baseline on DVS-style event streams.
//!
//! NEBULA's central claim is that spiking workloads win on energy
//! because silent neurons cost (almost) nothing. This benchmark maps
//! where that win actually begins on the circuit-level simulator:
//! quantized VGG/10 run as an SNN at 150 and 300 timesteps over
//! synthetic event frames ([`EventStreamConfig`]) whose input sparsity
//! is an exact knob, swept 90–99% sparse, against the same quantized
//! network run once as an ANN on the same frames.
//!
//! Per (timesteps, sparsity) point, three SNN legs run:
//!
//! * **sequential** — `run_sequential`, the per-sample per-cell
//!   reference;
//! * **scalar** — the event-driven engine pinned to
//!   [`KernelPath::Scalar`], whose outputs *and* read energy must match
//!   the reference bit for bit;
//! * **event** — the event-driven engine on the default vectorized
//!   kernels (the timed production path), bitwise-identical outputs and
//!   per-row-sum energy within 1e-9 relative of the reference.
//!
//! The ANN baseline leg (`forward` vs `forward_sequential`) is checked
//! the same way. Constant input encoding makes every leg's active set
//! deterministic and exactly the configured density. A sparsity-0.0
//! point per timestep count is the **dense-tick baseline**: the same
//! engine with every input pixel active, i.e. the cost of ticking every
//! neuron every timestep. `wall_ratio_vs_dense` divides each sparse
//! point's event-path wall time by that baseline — the wall-time-vs-
//! activity scaling the event-driven engine is meant to deliver — and
//! the binary asserts SNN@300 at 99% sparsity lands at ≤ 0.5× dense.
//! The SNN-vs-ANN energy crossover per timestep count is interpolated
//! from the energy sweep (`null` when the curves don't cross in range).
//!
//! Writes `results/BENCH_sparsity.json` (schema
//! `nebula-bench-sparsity/1`, documented in `EXPERIMENTS.md`).
//! `NEBULA_SPARSITY_SAMPLES` overrides the evaluated sample count and
//! `NEBULA_SPARSITY_POINTS` the sweep size (CI smoke runs 2 points).
//! The binary aborts on any divergence.

use std::time::Instant;

use nebula_bench::setup::{trained, Workload};
use nebula_core::analog::compile_ann;
use nebula_core::analog_snn::compile_snn_default;
use nebula_crossbar::KernelPath;
use nebula_nn::convert::{ann_to_snn, ConversionConfig};
use nebula_nn::quant::{quantize_network, QuantConfig};
use nebula_nn::snn::InputEncoding;
use nebula_tensor::Tensor;
use nebula_workloads::{generate_events, EventStreamConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Accumulated per-row-sum energy tolerance vs the reference (each dot
/// is within 1e-12 relative; the sweep sums millions of them).
const ENERGY_RTOL: f64 = 1e-9;

/// Acceptance bar: SNN@300 event-path wall time at 99% sparsity must be
/// at most this fraction of the dense-tick baseline. Applies to the
/// full default configuration (the recorded run); reduced smoke
/// configurations use [`SMOKE_WALL_RATIO_MAX`] instead, because with 2
/// samples the per-point wall times are a handful of engine passes and
/// scheduler noise alone can swing the ratio by tens of percent.
const SPARSE_WALL_RATIO_MAX: f64 = 0.5;

/// Sanity bar for reduced (CI smoke) configurations: still fails on a
/// real scaling regression — the event path costing as much as dense
/// ticking — without flaking on shared-runner timing noise.
const SMOKE_WALL_RATIO_MAX: f64 = 0.8;

/// The full sparsity sweep (fraction of *silent* input pixels).
const SWEEP: [f64; 5] = [0.90, 0.925, 0.95, 0.975, 0.99];

fn sample_count() -> usize {
    std::env::var("NEBULA_SPARSITY_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(4)
}

/// Sweep points to run, evenly selected from [`SWEEP`] (2 keeps the
/// endpoints — the CI smoke configuration).
fn sweep_points() -> Vec<f64> {
    let n: usize = std::env::var("NEBULA_SPARSITY_POINTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| (2..=SWEEP.len()).contains(&n))
        .unwrap_or(SWEEP.len());
    (0..n)
        .map(|i| SWEEP[i * (SWEEP.len() - 1) / (n - 1)])
        .collect()
}

struct Point {
    timesteps: usize,
    sparsity: f64,
    /// Fraction of input pixels active (exactly `1 − sparsity` by the
    /// event generator's contract).
    activity: f64,
    dense_baseline: bool,
    sequential_ms: f64,
    scalar_ms: f64,
    event_ms: f64,
    ann_ms: f64,
    snn_energy_j: f64,
    ann_energy_j: f64,
    /// All four legs bitwise/exactly identical to their references.
    identical: bool,
    energy_rel_err: f64,
    wall_ratio_vs_dense: f64,
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

fn bits_equal(a: &Tensor, b: &Tensor) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn rel_err(value: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        if value == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        ((value - reference) / reference).abs()
    }
}

/// Linear interpolation of the sparsity where the SNN and ANN energy
/// curves cross, from the per-point energy gaps; `None` when the sign
/// never flips inside the sweep.
fn crossover(points: &[&Point]) -> Option<f64> {
    for pair in points.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        let (ga, gb) = (
            a.snn_energy_j - a.ann_energy_j,
            b.snn_energy_j - b.ann_energy_j,
        );
        if ga == 0.0 {
            return Some(a.sparsity);
        }
        if ga.signum() != gb.signum() {
            let t = ga / (ga - gb);
            return Some(a.sparsity + t * (b.sparsity - a.sparsity));
        }
    }
    None
}

fn main() {
    let samples = sample_count();
    let sweep = sweep_points();
    let workers = nebula_tensor::pool::size();
    let t = trained(Workload::Vgg10, 500, 20);
    let q = quantize_network(&t.net, &t.train.take(64), &QuantConfig::default()).unwrap();
    let snn = ann_to_snn(&q, &t.train.take(64), &ConversionConfig::default()).unwrap();
    let snn_master = {
        let mut m = compile_snn_default(&snn).unwrap();
        // Constant encoding: the input spike set per timestep is exactly
        // the event pixels (> 0.5), so activity is deterministic and
        // precisely the configured density — no Poisson smearing.
        m.set_encoding(InputEncoding::Constant);
        m
    };
    let ann_master = compile_ann(&q).unwrap();

    let mut points: Vec<Point> = Vec::new();
    for &timesteps in &[150usize, 300] {
        let mut dense_event_ms = f64::NAN;
        for (i, &sparsity) in std::iter::once(&0.0).chain(sweep.iter()).enumerate() {
            let dense_baseline = i == 0;
            let cfg = EventStreamConfig::dvs(16, 10, samples, sparsity);
            let x = generate_events(&cfg).unwrap().inputs;

            // --- SNN: sequential reference, scalar event, fast event --
            let mut seq = snn_master.clone();
            let mut scalar = snn_master.clone();
            scalar.set_kernel_path(KernelPath::Scalar);
            let mut event = snn_master.clone();
            let mut r_seq = ChaCha8Rng::seed_from_u64(7);
            let mut r_scalar = ChaCha8Rng::seed_from_u64(7);
            let mut r_event = ChaCha8Rng::seed_from_u64(7);
            let tm = Instant::now();
            let ys = seq.run_sequential(&x, timesteps, &mut r_seq).unwrap();
            let sequential_ms = ms(tm);
            let tm = Instant::now();
            let ysc = scalar.run(&x, timesteps, &mut r_scalar).unwrap();
            let scalar_ms = ms(tm);
            let tm = Instant::now();
            let ye = event.run(&x, timesteps, &mut r_event).unwrap();
            let event_ms = ms(tm);
            // Scalar kernels accrue the reference energy formulation, so
            // even the joule counters must agree bit for bit.
            let scalar_identical = bits_equal(&ysc, &ys)
                && scalar.read_energy() == seq.read_energy()
                && scalar.waves() == seq.waves();
            let event_energy_err = rel_err(event.read_energy().0, seq.read_energy().0);
            let event_identical = bits_equal(&ye, &ys)
                && event_energy_err <= ENERGY_RTOL
                && event.waves() == seq.waves();

            // --- ANN baseline on the same frames ----------------------
            let mut ann = ann_master.clone();
            let mut ann_seq = ann_master.clone();
            let tm = Instant::now();
            let ya = ann.forward(&x).unwrap();
            let ann_ms = ms(tm);
            let yas = ann_seq.forward_sequential(&x).unwrap();
            let ann_energy_err = rel_err(ann.read_energy().0, ann_seq.read_energy().0);
            let ann_identical = bits_equal(&ya, &yas)
                && ann_energy_err <= ENERGY_RTOL
                && ann.waves() == ann_seq.waves();

            if dense_baseline {
                dense_event_ms = event_ms;
            }
            points.push(Point {
                timesteps,
                sparsity,
                activity: 1.0 - sparsity,
                dense_baseline,
                sequential_ms,
                scalar_ms,
                event_ms,
                ann_ms,
                snn_energy_j: event.read_energy().0,
                ann_energy_j: ann.read_energy().0,
                identical: scalar_identical && event_identical && ann_identical,
                energy_rel_err: event_energy_err.max(ann_energy_err),
                wall_ratio_vs_dense: event_ms / dense_event_ms.max(1e-9),
            });
        }
    }

    let all_identical = points.iter().all(|p| p.identical);
    let max_energy_err = points.iter().map(|p| p.energy_rel_err).fold(0.0, f64::max);
    let sparsest = *sweep.last().unwrap();
    let snn300_ratio = points
        .iter()
        .find(|p| p.timesteps == 300 && p.sparsity == sparsest)
        .map(|p| p.wall_ratio_vs_dense)
        .unwrap_or(f64::NAN);

    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"nebula-bench-sparsity/1\",\n");
    json.push_str("  \"workload\": \"VGG/10 on DVS event streams\",\n");
    json.push_str(&format!("  \"samples\": {samples},\n"));
    json.push_str(&format!("  \"workers\": {workers},\n"));
    json.push_str(&format!(
        "  \"sweep\": [{}],\n",
        sweep
            .iter()
            .map(|s| format!("{s}"))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"timesteps\": {}, \"sparsity\": {}, \"activity\": {}, \"dense_baseline\": {}, \"sequential_ms\": {:.3}, \"scalar_ms\": {:.3}, \"event_ms\": {:.3}, \"ann_ms\": {:.3}, \"snn_energy_j\": {:.6e}, \"ann_energy_j\": {:.6e}, \"snn_over_ann_energy\": {:.4}, \"wall_ratio_vs_dense\": {:.4}, \"identical\": {}, \"energy_rel_err\": {:.3e}}}{}\n",
            p.timesteps,
            p.sparsity,
            p.activity,
            p.dense_baseline,
            p.sequential_ms,
            p.scalar_ms,
            p.event_ms,
            p.ann_ms,
            p.snn_energy_j,
            p.ann_energy_j,
            p.snn_energy_j / p.ann_energy_j.max(1e-300),
            p.wall_ratio_vs_dense,
            p.identical,
            p.energy_rel_err,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"crossover\": [\n");
    for (i, &timesteps) in [150usize, 300].iter().enumerate() {
        let swept: Vec<&Point> = points
            .iter()
            .filter(|p| p.timesteps == timesteps && !p.dense_baseline)
            .collect();
        let x = crossover(&swept);
        json.push_str(&format!(
            "    {{\"timesteps\": {}, \"sparsity\": {}}}{}\n",
            timesteps,
            x.map_or("null".into(), |v| format!("{v:.4}")),
            if i == 0 { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    let full_config = samples >= 4 && sweep.len() == SWEEP.len();
    let wall_ratio_max = if full_config {
        SPARSE_WALL_RATIO_MAX
    } else {
        SMOKE_WALL_RATIO_MAX
    };
    json.push_str(&format!(
        "  \"summary\": {{\"identical\": {}, \"max_energy_rel_err\": {:.3e}, \"snn300_sparsest_wall_ratio\": {:.4}, \"wall_ratio_max\": {}}}\n",
        all_identical, max_energy_err, snn300_ratio, wall_ratio_max
    ));
    json.push_str("}\n");

    let path = if std::path::Path::new("results").is_dir() {
        "results/BENCH_sparsity.json"
    } else {
        "BENCH_sparsity.json"
    };
    std::fs::write(path, &json).expect("write BENCH_sparsity.json");

    println!("BENCH sparsity (VGG/10 events, {samples} samples), written to {path}\n");
    for p in &points {
        println!(
            "  snn@{:<3} sparsity {:>5.3}{}  seq {:>8.1} ms   scalar {:>8.1} ms   event {:>8.1} ms   ann {:>7.1} ms   snn/ann energy {:>8.3}   wall/dense {:>6.3}   identical: {}",
            p.timesteps,
            p.sparsity,
            if p.dense_baseline { "*" } else { " " },
            p.sequential_ms,
            p.scalar_ms,
            p.event_ms,
            p.ann_ms,
            p.snn_energy_j / p.ann_energy_j.max(1e-300),
            p.wall_ratio_vs_dense,
            p.identical,
        );
    }
    println!("\n  (* = dense-tick baseline)  snn@300 wall ratio at sparsity {sparsest}: {snn300_ratio:.3} (bar {wall_ratio_max})");

    assert!(
        all_identical,
        "event-driven path diverged from the reference"
    );
    assert!(
        max_energy_err <= ENERGY_RTOL,
        "per-row-sum energy deviated {max_energy_err:.3e} > {ENERGY_RTOL:.0e} relative"
    );
    assert!(
        snn300_ratio <= wall_ratio_max,
        "SNN@300 at {sparsest} sparsity ran at {snn300_ratio:.3}× dense — event-driven skipping is not paying"
    );
}
