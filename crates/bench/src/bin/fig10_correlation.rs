//! Figure 10: correlation between ANN and SNN feature maps by layer
//! depth, for short and long evidence-integration windows.

use nebula_bench::setup::{trained, Workload};
use nebula_bench::table::print_table;
use nebula_nn::convert::{ann_to_snn, ConversionConfig};
use nebula_nn::layer::Layer;
use nebula_nn::stats::feature_map_correlation;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let t = trained(Workload::Mobilenet10, 400, 18);
    let inputs = t.test.take(40).inputs;
    // ANN reference activations at every ReLU.
    let mut ann = t.net.clone();
    let ann_outputs = ann.forward_collect(&inputs).unwrap();
    let relu_outputs: Vec<_> = t
        .net
        .layers()
        .iter()
        .zip(&ann_outputs)
        .filter(|(l, _)| matches!(l, Layer::Relu(_)))
        .map(|(_, o)| o.clone())
        .collect();

    let cfg = ConversionConfig::default();
    let mut snn = ann_to_snn(&t.net, &t.train.take(64), &cfg).unwrap();
    // IF populations come in two flavours: those replacing ReLUs and
    // those inserted after pooling layers. Pair ANN ReLU maps only with
    // ReLU-derived IF layers.
    let probe: Vec<usize> = {
        use nebula_nn::snn::SnnStage;
        let mut relu_ifs = Vec::new();
        let mut if_index = 0usize;
        let stages = snn.stages();
        for (i, stage) in stages.iter().enumerate() {
            if let SnnStage::IntegrateFire(_) = stage {
                let after_pool = i > 0
                    && matches!(
                        stages.get(i - 1),
                        Some(SnnStage::Synaptic(Layer::AvgPool(_)))
                    );
                if !after_pool {
                    relu_ifs.push(if_index);
                }
                if_index += 1;
            }
        }
        relu_ifs
    };
    let mut rows = Vec::new();
    let mut corr_by_t = Vec::new();
    for timesteps in [30usize, 150] {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let (_, recorded) = snn
            .run_recording(&inputs, timesteps, &mut rng, &probe)
            .unwrap();
        // Recorded IF layers in network order include pool-IF stages; the
        // ReLU-derived IF layers appear in the same order as the ReLUs.
        let mut corr = Vec::new();
        for (ann_map, counts) in relu_outputs.iter().zip(&recorded) {
            if ann_map.shape() == counts.shape() {
                let rates = counts.scale(1.0 / timesteps as f32);
                corr.push(feature_map_correlation(ann_map, &rates).unwrap());
            }
        }
        corr_by_t.push((timesteps, corr));
    }
    let depth = corr_by_t[0].1.len();
    for i in 0..depth {
        rows.push(vec![
            format!("layer {}", i + 1),
            format!("{:.3}", corr_by_t[0].1[i]),
            format!("{:.3}", corr_by_t[1].1[i]),
        ]);
    }
    print_table(
        "Fig. 10 (MobileNet): ANN-SNN feature-map correlation by depth",
        &[
            "layer",
            &format!("T={}", corr_by_t[0].0),
            &format!("T={}", corr_by_t[1].0),
        ],
        &rows,
    );
    println!("\nShape check: correlation drops with depth, and the drop is");
    println!("steeper for the shorter window - the motivation for hybrids.");
}
