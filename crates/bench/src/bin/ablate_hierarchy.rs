//! Ablation: the neuron-unit hierarchy (current-domain partial-sum
//! aggregation). Without it, every atomic crossbar's column currents
//! must be digitized through an ADC and merged digitally — the
//! ISAAC/INXS structure the paper's §IV-B3 argues against.

use nebula_bench::table::{print_table, ratio, uj};
use nebula_core::components;
use nebula_core::energy::EnergyModel;
use nebula_core::engine::evaluate_ann;
use nebula_core::mapper::map_network;
use nebula_device::units::Joules;
use nebula_workloads::zoo;

fn main() {
    let model = EnergyModel::default();
    let mut rows = Vec::new();
    for (name, ds) in zoo::all_models() {
        let with = evaluate_ann(&model, &ds);
        // Hierarchy off: every occupied AC needs its own full-rate ADC
        // (1 mW at 4 bits, the ISAAC-class converter) plus shift-and-add
        // merge logic (1.2 mW), active every cycle — NEBULA's single
        // time-shared 0.43 mW ADC per core no longer suffices once
        // partial sums cannot merge in the current domain.
        let mappings = map_network(&ds);
        let adc_per_ac = nebula_device::units::Watts::from_mw(1.0);
        let merge_per_ac = nebula_device::units::Watts::from_mw(1.2);
        let mut extra = Joules::ZERO;
        for m in &mappings {
            let t_active = components::CYCLE * m.cycles as f64;
            extra += (adc_per_ac + merge_per_ac) * m.acs_used as f64 * t_active;
        }
        let without = with.total_energy() + extra;
        rows.push(vec![
            name.to_string(),
            uj(with.total_energy().0),
            uj(without.0),
            ratio(without.0 / with.total_energy().0),
        ]);
    }
    print_table(
        "Ablation: NU hierarchy (ANN mode energy, with vs without current-domain aggregation)",
        &["model", "with hierarchy", "ADC-everywhere", "overhead"],
        &rows,
    );
    println!("\nThe hierarchy's Kirchhoff current summing eliminates per-crossbar");
    println!("ADC conversions - the single biggest structural saving vs ISAAC.");
}
