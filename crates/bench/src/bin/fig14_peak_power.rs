//! Figure 14: layer-wise peak power of NEBULA-ANN relative to
//! NEBULA-SNN for the benchmark networks.

use nebula_bench::table::{print_table, ratio};
use nebula_core::energy::EnergyModel;
use nebula_core::engine::{par_evaluate_suite, SuiteJob, SuiteMode, SuiteOutcome};
use nebula_workloads::zoo;

fn main() {
    let model = EnergyModel::default();
    let models = [
        ("VGG-13", zoo::vgg13(10)),
        ("MobileNet-v1", zoo::mobilenet_v1(10)),
        ("AlexNet", zoo::alexnet()),
        ("SVHN-Net", zoo::svhn_net()),
    ];
    // One ANN + one SNN job per model, fanned out across the pool.
    let jobs: Vec<SuiteJob> = models
        .iter()
        .flat_map(|(name, ds)| {
            [
                SuiteJob::new(*name, ds.clone(), SuiteMode::Ann),
                SuiteJob::new(*name, ds.clone(), SuiteMode::Snn { timesteps: 300 }),
            ]
        })
        .collect();
    let reports = par_evaluate_suite(&model, &jobs);
    for (pair, (name, _)) in reports.chunks(2).zip(&models) {
        let (SuiteOutcome::Inference(ann), SuiteOutcome::Inference(snn)) =
            (&pair[0].outcome, &pair[1].outcome)
        else {
            unreachable!("fig14 jobs are pure ANN/SNN evaluations");
        };
        let rows: Vec<Vec<String>> = ann
            .layers
            .iter()
            .zip(&snn.layers)
            .map(|(a, s)| {
                vec![
                    a.name.clone(),
                    format!("{:.3} mW", a.peak_power.as_mw()),
                    format!("{:.4} mW", s.peak_power.as_mw()),
                    ratio(a.peak_power.0 / s.peak_power.0.max(f64::MIN_POSITIVE)),
                ]
            })
            .collect();
        print_table(
            &format!("Fig. 14 ({name}): per-layer peak power, ANN vs SNN"),
            &["layer", "ANN peak", "SNN peak", "ANN/SNN"],
            &rows,
        );
    }
    println!("\nPaper shape: ANN peak power up to ~50x the SNN peak; the ratio");
    println!("grows in deeper layers where spiking activity is sparsest.");
}
