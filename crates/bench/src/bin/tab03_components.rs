//! Table III: component specifications of the NEBULA chip — power, area
//! and counts — recomputed from the per-component catalog.

use nebula_bench::table::{mw, print_table};
use nebula_core::components as parts;

fn main() {
    let spec = |c: &parts::ComponentSpec| {
        vec![
            c.name.to_string(),
            c.spec.to_string(),
            mw(c.power.0),
            format!("{:.5} mm^2", c.area.0),
        ]
    };
    let rows: Vec<Vec<String>> = [
        &parts::EDRAM,
        &parts::ADC,
        &parts::ANN_SUPERTILE,
        &parts::SNN_SUPERTILE,
        &parts::ANN_INPUT_BUFFER,
        &parts::SNN_INPUT_BUFFER,
        &parts::ANN_OUTPUT_BUFFER,
        &parts::SNN_OUTPUT_BUFFER,
        &parts::ANN_DAC,
        &parts::ANN_CROSSBAR,
        &parts::SNN_DRIVER,
        &parts::SNN_CROSSBAR,
        &parts::NEURON_UNIT,
        &parts::AU_ADDER,
        &parts::AU_REGISTER,
        &parts::ACCUMULATOR_UNIT,
    ]
    .iter()
    .map(|c| spec(c))
    .collect();
    print_table(
        "Table III: NEBULA component specifications",
        &["Component", "Spec", "Power", "Area"],
        &rows,
    );

    let totals = vec![
        vec![
            "ANN core (x14)".into(),
            String::new(),
            mw(parts::ann_core_power().0),
            format!("{:.3} mm^2", parts::ann_core_area().0),
        ],
        vec![
            "SNN core (x182)".into(),
            String::new(),
            mw(parts::snn_core_power().0),
            format!("{:.3} mm^2", parts::snn_core_area().0),
        ],
        vec![
            "Chip total".into(),
            "14 ANN + 182 SNN + 14 AU".into(),
            format!("{:.3} W", parts::chip_power().0),
            format!("{:.3} mm^2", parts::chip_area().0),
        ],
    ];
    print_table(
        "Derived totals (paper: 113.8 mW / 19.66 mW cores, 5.2 W / 86.729 mm^2 chip)",
        &["Aggregate", "Composition", "Power", "Area"],
        &totals,
    );
}
