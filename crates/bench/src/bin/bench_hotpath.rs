//! Analog-eval hot path: vectorized and bit-packed quantized kernels vs
//! the scalar fast path vs the legacy per-sample per-cell reference on
//! the circuit-level executors.
//!
//! Times the quantized VGG/10 workload through [`AnalogNetwork`] (ANN)
//! and [`AnalogSpikingNetwork`] at 50/150/300 timesteps, running each
//! leg five times:
//!
//! * **sequential** — the uncached per-sample reference
//!   (`forward_sequential` / `run_sequential`);
//! * **fast** — the cached, batched, spike-sparse fast path pinned to
//!   [`KernelPath::Scalar`] (the per-cell loop, matching the pre-kernel
//!   fast path bit for bit, energy included);
//! * **kernels** — the same fast path on the default
//!   [`KernelPath::Vectorized`] column-lane GEMV kernels;
//! * **quantized** — [`KernelPath::Quantized`], the nibble-packed
//!   palette layout whose spike inner loop is a pure LUT gather-add;
//! * **auto** — [`KernelPath::Auto`], the per-drive-shape dispatch that
//!   sends dense GEMV drives through the vectorized layout and spike
//!   drives through the quantized LUT, fixing the dense-ANN regression
//!   the explicit quantized leg records (qgain < 1 on the `ann` leg)
//!   without giving up the quantized win on the SNN legs.
//!
//! Differential outputs and wave counts must match bit for bit across
//! all five; scalar energy must equal the reference exactly; the
//! vectorized, quantized and auto legs share the per-row-sum energy
//! formulation (asserted bitwise equal to *each other*) and are checked
//! against a 1e-9 relative tolerance vs the reference (per-dot bound is
//! 1e-12 — see DESIGN.md "Kernel layer"). The quantized conductance
//! cache must also come in at ≤ 1/3 of the vectorized f64 differential
//! cache (auto is excluded — it deliberately keeps both layouts). The
//! binary aborts on any divergence.
//!
//! Writes `results/BENCH_hotpath.json` (schema `nebula-bench-hotpath/4`,
//! documented in `EXPERIMENTS.md`). `NEBULA_HOTPATH_SAMPLES` overrides
//! the evaluated sample count (CI smoke runs use a reduced set).

use std::time::Instant;

use nebula_bench::setup::{trained, Workload};
use nebula_core::analog::compile_ann;
use nebula_core::analog_snn::compile_snn_default;
use nebula_crossbar::KernelPath;
use nebula_nn::convert::{ann_to_snn, ConversionConfig};
use nebula_nn::quant::{quantize_network, QuantConfig};
use nebula_tensor::Tensor;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Accumulated-energy tolerance for the per-row-sum legs: each dot is
/// within 1e-12 relative of the reference, and the workload sums
/// millions of them, so the accumulated deviation stays far below this.
const ENERGY_RTOL: f64 = 1e-9;

/// Ceiling on quantized-vs-vectorized conductance-cache footprint (the
/// acceptance bar is "≤ ~1/3"; the packed layout actually lands near
/// 1/16 at crossbar widths).
const CACHE_RATIO_MAX: f64 = 1.0 / 3.0;

/// Evaluated sample count (the circuit-level SNN legs dominate the
/// wall clock, so this stays modest by default).
fn sample_count() -> usize {
    std::env::var("NEBULA_HOTPATH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(8)
}

struct Leg {
    name: String,
    detail: String,
    sequential_ms: f64,
    fast_ms: f64,
    kernels_ms: f64,
    quantized_ms: f64,
    auto_ms: f64,
    /// Outputs + waves bitwise identical across all five paths, scalar
    /// energy exactly equal to the reference, and quantized/auto energy
    /// bitwise equal to vectorized.
    identical: bool,
    /// |per-row-sum − reference| / |reference| on accumulated read
    /// energy (vectorized and quantized accrue identical bits).
    energy_rel_err: f64,
    /// Conductance-cache footprint of the two layouts, in bytes.
    cache_bytes_vectorized: usize,
    cache_bytes_quantized: usize,
}

impl Leg {
    /// Headline speedup: vectorized kernels vs the sequential reference.
    fn speedup(&self) -> f64 {
        self.sequential_ms / self.kernels_ms.max(1e-9)
    }

    /// Kernel-layer gain: vectorized kernels vs the scalar fast path.
    fn kernel_gain(&self) -> f64 {
        self.fast_ms / self.kernels_ms.max(1e-9)
    }

    /// Quantized-tier gain: nibble-packed LUT gather vs the vectorized
    /// kernels it competes with.
    fn quantized_gain(&self) -> f64 {
        self.kernels_ms / self.quantized_ms.max(1e-9)
    }

    /// Auto-dispatch gain: per-drive-shape dispatch vs the *better* of
    /// the two explicit layouts on this leg — ≥ ~1 everywhere means the
    /// heuristic never picks the losing inner loop.
    fn auto_gain(&self) -> f64 {
        self.kernels_ms.min(self.quantized_ms) / self.auto_ms.max(1e-9)
    }

    fn cache_ratio(&self) -> f64 {
        self.cache_bytes_quantized as f64 / (self.cache_bytes_vectorized as f64).max(1.0)
    }
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

fn bits_equal(a: &Tensor, b: &Tensor) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn rel_err(value: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        if value == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        ((value - reference) / reference).abs()
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let samples = sample_count();
    let workers = nebula_tensor::pool::size();
    let t = trained(Workload::Vgg10, 500, 20);
    let q = quantize_network(&t.net, &t.train.take(64), &QuantConfig::default()).unwrap();
    let x = t.test.take(samples).inputs;

    let mut legs = Vec::new();

    // --- ANN: batched dot_batch fast path vs per-row reference ----------
    {
        let mut kernels = compile_ann(&q).unwrap();
        let mut slow = kernels.clone();
        let mut fast = kernels.clone();
        fast.set_kernel_path(KernelPath::Scalar);
        let mut quant = kernels.clone();
        quant.set_kernel_path(KernelPath::Quantized);
        let mut auto = kernels.clone();
        auto.set_kernel_path(KernelPath::Auto);
        let tm = Instant::now();
        let ys = slow.forward_sequential(&x).unwrap();
        let sequential_ms = ms(tm);
        let tm = Instant::now();
        let yf = fast.forward(&x).unwrap();
        let fast_ms = ms(tm);
        let tm = Instant::now();
        let yk = kernels.forward(&x).unwrap();
        let kernels_ms = ms(tm);
        let tm = Instant::now();
        let yq = quant.forward(&x).unwrap();
        let quantized_ms = ms(tm);
        let tm = Instant::now();
        let ya = auto.forward(&x).unwrap();
        let auto_ms = ms(tm);
        legs.push(Leg {
            name: "ann".into(),
            detail: format!("VGG/10 quantized, {samples} samples"),
            sequential_ms,
            fast_ms,
            kernels_ms,
            quantized_ms,
            auto_ms,
            identical: bits_equal(&yf, &ys)
                && bits_equal(&yk, &ys)
                && bits_equal(&yq, &ys)
                && bits_equal(&ya, &ys)
                && fast.read_energy() == slow.read_energy()
                && quant.read_energy() == kernels.read_energy()
                && auto.read_energy() == kernels.read_energy()
                && fast.waves() == slow.waves()
                && kernels.waves() == slow.waves()
                && quant.waves() == slow.waves()
                && auto.waves() == slow.waves(),
            energy_rel_err: rel_err(kernels.read_energy().0, slow.read_energy().0),
            cache_bytes_vectorized: kernels.conductance_cache_bytes(),
            cache_bytes_quantized: quant.conductance_cache_bytes(),
        });
    }

    // --- SNN: spike-sparse batched timesteps vs per-sample reference ----
    let snn = ann_to_snn(&q, &t.train.take(64), &ConversionConfig::default()).unwrap();
    for timesteps in [50usize, 150, 300] {
        let mut kernels = compile_snn_default(&snn).unwrap();
        let mut slow = kernels.clone();
        let mut fast = kernels.clone();
        fast.set_kernel_path(KernelPath::Scalar);
        let mut quant = kernels.clone();
        quant.set_kernel_path(KernelPath::Quantized);
        let mut auto = kernels.clone();
        auto.set_kernel_path(KernelPath::Auto);
        // Same seed on every leg: the Poisson encoder draws per timestep
        // for the whole batch, so RNG consumption is identical.
        let mut r_slow = ChaCha8Rng::seed_from_u64(7);
        let mut r_fast = ChaCha8Rng::seed_from_u64(7);
        let mut r_kern = ChaCha8Rng::seed_from_u64(7);
        let mut r_quant = ChaCha8Rng::seed_from_u64(7);
        let mut r_auto = ChaCha8Rng::seed_from_u64(7);
        let tm = Instant::now();
        let ys = slow.run_sequential(&x, timesteps, &mut r_slow).unwrap();
        let sequential_ms = ms(tm);
        let tm = Instant::now();
        let yf = fast.run(&x, timesteps, &mut r_fast).unwrap();
        let fast_ms = ms(tm);
        let tm = Instant::now();
        let yk = kernels.run(&x, timesteps, &mut r_kern).unwrap();
        let kernels_ms = ms(tm);
        let tm = Instant::now();
        let yq = quant.run(&x, timesteps, &mut r_quant).unwrap();
        let quantized_ms = ms(tm);
        let tm = Instant::now();
        let ya = auto.run(&x, timesteps, &mut r_auto).unwrap();
        let auto_ms = ms(tm);
        legs.push(Leg {
            name: format!("snn@{timesteps}"),
            detail: format!("VGG/10 spiking, {samples} samples, {timesteps} timesteps"),
            sequential_ms,
            fast_ms,
            kernels_ms,
            quantized_ms,
            auto_ms,
            identical: bits_equal(&yf, &ys)
                && bits_equal(&yk, &ys)
                && bits_equal(&yq, &ys)
                && bits_equal(&ya, &ys)
                && fast.read_energy() == slow.read_energy()
                && quant.read_energy() == kernels.read_energy()
                && auto.read_energy() == kernels.read_energy()
                && fast.waves() == slow.waves()
                && kernels.waves() == slow.waves()
                && quant.waves() == slow.waves()
                && auto.waves() == slow.waves(),
            energy_rel_err: rel_err(kernels.read_energy().0, slow.read_energy().0),
            cache_bytes_vectorized: kernels.conductance_cache_bytes(),
            cache_bytes_quantized: quant.conductance_cache_bytes(),
        });
    }

    let total_seq: f64 = legs.iter().map(|l| l.sequential_ms).sum();
    let total_fast: f64 = legs.iter().map(|l| l.fast_ms).sum();
    let total_kernels: f64 = legs.iter().map(|l| l.kernels_ms).sum();
    let total_quantized: f64 = legs.iter().map(|l| l.quantized_ms).sum();
    let total_auto: f64 = legs.iter().map(|l| l.auto_ms).sum();
    let all_identical = legs.iter().all(|l| l.identical);
    let max_energy_err = legs.iter().map(|l| l.energy_rel_err).fold(0.0, f64::max);
    let max_cache_ratio = legs.iter().map(Leg::cache_ratio).fold(0.0, f64::max);

    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"nebula-bench-hotpath/4\",\n");
    json.push_str("  \"workload\": \"VGG/10\",\n");
    json.push_str(&format!("  \"samples\": {samples},\n"));
    json.push_str(&format!("  \"workers\": {workers},\n"));
    json.push_str("  \"legs\": [\n");
    for (i, l) in legs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"detail\": \"{}\", \"sequential_ms\": {:.3}, \"fast_ms\": {:.3}, \"kernels_ms\": {:.3}, \"quantized_ms\": {:.3}, \"auto_ms\": {:.3}, \"speedup\": {:.3}, \"kernel_gain\": {:.3}, \"quantized_gain\": {:.3}, \"auto_gain\": {:.3}, \"identical\": {}, \"energy_rel_err\": {:.3e}, \"cache_bytes_vectorized\": {}, \"cache_bytes_quantized\": {}, \"cache_ratio\": {:.4}}}{}\n",
            json_escape(&l.name),
            json_escape(&l.detail),
            l.sequential_ms,
            l.fast_ms,
            l.kernels_ms,
            l.quantized_ms,
            l.auto_ms,
            l.speedup(),
            l.kernel_gain(),
            l.quantized_gain(),
            l.auto_gain(),
            l.identical,
            l.energy_rel_err,
            l.cache_bytes_vectorized,
            l.cache_bytes_quantized,
            l.cache_ratio(),
            if i + 1 < legs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"total\": {{\"sequential_ms\": {:.3}, \"fast_ms\": {:.3}, \"kernels_ms\": {:.3}, \"quantized_ms\": {:.3}, \"auto_ms\": {:.3}, \"speedup\": {:.3}, \"kernel_gain\": {:.3}, \"quantized_gain\": {:.3}, \"auto_gain\": {:.3}, \"identical\": {}, \"max_energy_rel_err\": {:.3e}, \"max_cache_ratio\": {:.4}}}\n",
        total_seq,
        total_fast,
        total_kernels,
        total_quantized,
        total_auto,
        total_seq / total_kernels.max(1e-9),
        total_fast / total_kernels.max(1e-9),
        total_kernels / total_quantized.max(1e-9),
        total_kernels.min(total_quantized) / total_auto.max(1e-9),
        all_identical,
        max_energy_err,
        max_cache_ratio
    ));
    json.push_str("}\n");

    let path = if std::path::Path::new("results").is_dir() {
        "results/BENCH_hotpath.json"
    } else {
        "BENCH_hotpath.json"
    };
    std::fs::write(path, &json).expect("write BENCH_hotpath.json");

    println!("BENCH hotpath (VGG/10, {samples} samples), written to {path}\n");
    for l in &legs {
        println!(
            "  {:<8} {:<44} seq {:>9.1} ms   fast {:>9.1} ms   kernels {:>9.1} ms   quant {:>9.1} ms   auto {:>9.1} ms   {:>5.2}x (gain {:>4.2}x, qgain {:>4.2}x, again {:>4.2}x)   identical: {}   energy err {:.1e}   cache {:.3}",
            l.name,
            l.detail,
            l.sequential_ms,
            l.fast_ms,
            l.kernels_ms,
            l.quantized_ms,
            l.auto_ms,
            l.speedup(),
            l.kernel_gain(),
            l.quantized_gain(),
            l.auto_gain(),
            l.identical,
            l.energy_rel_err,
            l.cache_ratio()
        );
    }
    println!(
        "\n  total: seq {total_seq:.1} ms, fast {total_fast:.1} ms, kernels {total_kernels:.1} ms, quantized {total_quantized:.1} ms, auto {total_auto:.1} ms, speedup {:.2}x, kernel gain {:.2}x, quantized gain {:.2}x, auto gain {:.2}x",
        total_seq / total_kernels.max(1e-9),
        total_fast / total_kernels.max(1e-9),
        total_kernels / total_quantized.max(1e-9),
        total_kernels.min(total_quantized) / total_auto.max(1e-9)
    );
    assert!(all_identical, "fast path diverged from the reference");
    assert!(
        max_energy_err <= ENERGY_RTOL,
        "per-row-sum energy deviated {max_energy_err:.3e} > {ENERGY_RTOL:.0e} relative"
    );
    assert!(
        max_cache_ratio <= CACHE_RATIO_MAX,
        "quantized cache ratio {max_cache_ratio:.3} exceeds {CACHE_RATIO_MAX:.3}"
    );
}
