//! Analog-eval hot path: cached/batched fast path vs the legacy
//! per-sample per-cell reference on the circuit-level executors.
//!
//! Times the quantized VGG/10 workload through [`AnalogNetwork`] (ANN)
//! and [`AnalogSpikingNetwork`] at 50/150/300 timesteps, running each
//! leg twice: once through the uncached sequential reference
//! (`forward_sequential` / `run_sequential` — the pre-cache baseline)
//! and once through the cached, batched, spike-sparse fast path
//! (`forward` / `run`). Outputs and accumulated read energy must match
//! bit for bit; the binary aborts otherwise.
//!
//! Writes `results/BENCH_hotpath.json` (schema `nebula-bench-hotpath/1`,
//! documented in `EXPERIMENTS.md`). `NEBULA_HOTPATH_SAMPLES` overrides
//! the evaluated sample count (CI smoke runs use a reduced set).

use std::time::Instant;

use nebula_bench::setup::{trained, Workload};
use nebula_core::analog::compile_ann;
use nebula_core::analog_snn::compile_snn_default;
use nebula_nn::convert::{ann_to_snn, ConversionConfig};
use nebula_nn::quant::{quantize_network, QuantConfig};
use nebula_tensor::Tensor;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Evaluated sample count (the circuit-level SNN legs dominate the
/// wall clock, so this stays modest by default).
fn sample_count() -> usize {
    std::env::var("NEBULA_HOTPATH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(8)
}

struct Leg {
    name: String,
    detail: String,
    sequential_ms: f64,
    fast_ms: f64,
    identical: bool,
}

impl Leg {
    fn speedup(&self) -> f64 {
        self.sequential_ms / self.fast_ms.max(1e-9)
    }
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

fn bits_equal(a: &Tensor, b: &Tensor) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let samples = sample_count();
    let workers = nebula_tensor::par::worker_count();
    let t = trained(Workload::Vgg10, 500, 20);
    let q = quantize_network(&t.net, &t.train.take(64), &QuantConfig::default()).unwrap();
    let x = t.test.take(samples).inputs;

    let mut legs = Vec::new();

    // --- ANN: batched dot_batch fast path vs per-row reference ----------
    {
        let mut fast = compile_ann(&q).unwrap();
        let mut slow = fast.clone();
        let tm = Instant::now();
        let ys = slow.forward_sequential(&x).unwrap();
        let sequential_ms = ms(tm);
        let tm = Instant::now();
        let yf = fast.forward(&x).unwrap();
        let fast_ms = ms(tm);
        legs.push(Leg {
            name: "ann".into(),
            detail: format!("VGG/10 quantized, {samples} samples"),
            sequential_ms,
            fast_ms,
            identical: bits_equal(&yf, &ys)
                && fast.read_energy() == slow.read_energy()
                && fast.waves() == slow.waves(),
        });
    }

    // --- SNN: spike-sparse batched timesteps vs per-sample reference ----
    let snn = ann_to_snn(&q, &t.train.take(64), &ConversionConfig::default()).unwrap();
    for timesteps in [50usize, 150, 300] {
        let mut fast = compile_snn_default(&snn).unwrap();
        let mut slow = fast.clone();
        // Same seed both legs: the Poisson encoder draws per timestep
        // for the whole batch, so RNG consumption is identical.
        let mut r_slow = ChaCha8Rng::seed_from_u64(7);
        let mut r_fast = ChaCha8Rng::seed_from_u64(7);
        let tm = Instant::now();
        let ys = slow.run_sequential(&x, timesteps, &mut r_slow).unwrap();
        let sequential_ms = ms(tm);
        let tm = Instant::now();
        let yf = fast.run(&x, timesteps, &mut r_fast).unwrap();
        let fast_ms = ms(tm);
        legs.push(Leg {
            name: format!("snn@{timesteps}"),
            detail: format!("VGG/10 spiking, {samples} samples, {timesteps} timesteps"),
            sequential_ms,
            fast_ms,
            identical: bits_equal(&yf, &ys)
                && fast.read_energy() == slow.read_energy()
                && fast.waves() == slow.waves(),
        });
    }

    let total_seq: f64 = legs.iter().map(|l| l.sequential_ms).sum();
    let total_fast: f64 = legs.iter().map(|l| l.fast_ms).sum();
    let all_identical = legs.iter().all(|l| l.identical);

    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"nebula-bench-hotpath/1\",\n");
    json.push_str("  \"workload\": \"VGG/10\",\n");
    json.push_str(&format!("  \"samples\": {samples},\n"));
    json.push_str(&format!("  \"workers\": {workers},\n"));
    json.push_str("  \"legs\": [\n");
    for (i, l) in legs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"detail\": \"{}\", \"sequential_ms\": {:.3}, \"fast_ms\": {:.3}, \"speedup\": {:.3}, \"identical\": {}}}{}\n",
            json_escape(&l.name),
            json_escape(&l.detail),
            l.sequential_ms,
            l.fast_ms,
            l.speedup(),
            l.identical,
            if i + 1 < legs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"total\": {{\"sequential_ms\": {:.3}, \"fast_ms\": {:.3}, \"speedup\": {:.3}, \"identical\": {}}}\n",
        total_seq,
        total_fast,
        total_seq / total_fast.max(1e-9),
        all_identical
    ));
    json.push_str("}\n");

    let path = if std::path::Path::new("results").is_dir() {
        "results/BENCH_hotpath.json"
    } else {
        "BENCH_hotpath.json"
    };
    std::fs::write(path, &json).expect("write BENCH_hotpath.json");

    println!("BENCH hotpath (VGG/10, {samples} samples), written to {path}\n");
    for l in &legs {
        println!(
            "  {:<8} {:<44} seq {:>9.1} ms   fast {:>9.1} ms   {:>5.2}x   identical: {}",
            l.name,
            l.detail,
            l.sequential_ms,
            l.fast_ms,
            l.speedup(),
            l.identical
        );
    }
    println!(
        "\n  total: seq {total_seq:.1} ms, fast {total_fast:.1} ms, speedup {:.2}x",
        total_seq / total_fast.max(1e-9)
    );
    assert!(all_identical, "fast path diverged from the reference");
}
