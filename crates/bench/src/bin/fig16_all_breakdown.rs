//! Figure 16: component-wise relative energy breakdown of all benchmark
//! models on NEBULA in SNN and ANN modes.

use nebula_bench::table::print_table;
use nebula_core::energy::EnergyModel;
use nebula_core::engine::{par_evaluate_suite, SuiteJob, SuiteMode, SuiteOutcome};
use nebula_workloads::zoo;

fn main() {
    let model = EnergyModel::default();
    let models = zoo::all_models();
    // The whole grid — every model in both modes — is one parallel suite.
    let jobs: Vec<SuiteJob> = [SuiteMode::Snn { timesteps: 300 }, SuiteMode::Ann]
        .into_iter()
        .flat_map(|mode| {
            models
                .iter()
                .map(move |(name, ds)| SuiteJob::new(*name, ds.clone(), mode))
        })
        .collect();
    let reports = par_evaluate_suite(&model, &jobs);
    for (snn_mode, mode_reports) in [
        (true, &reports[..models.len()]),
        (false, &reports[models.len()..]),
    ] {
        let mut rows = Vec::new();
        for suite_report in mode_reports {
            let SuiteOutcome::Inference(report) = &suite_report.outcome else {
                unreachable!("fig16 jobs are pure evaluations");
            };
            let f = report.total.fractions();
            let get = |k: &str| {
                f.iter()
                    .find(|(n, _)| *n == k)
                    .map_or(0.0, |(_, v)| *v * 100.0)
            };
            rows.push(vec![
                suite_report.label.clone(),
                format!("{:.1}", get("crossbar") + get("drivers")),
                format!("{:.1}", get("sram")),
                format!("{:.1}", get("edram")),
                format!("{:.1}", get("adc")),
                format!("{:.1}", get("noc") + get("neuron_units")),
            ]);
        }
        print_table(
            &format!(
                "Fig. 16 ({} mode): component energy shares (%)",
                if snn_mode { "SNN" } else { "ANN" }
            ),
            &["model", "xbar+drv", "sram", "edram", "adc", "other"],
            &rows,
        );
    }
    println!("\nPaper shape: SNN mode - memories (SRAM, then eDRAM) and crossbars");
    println!("dominate; ANN mode - crossbars and DACs are the major consumers.");
}
