//! Figure 16: component-wise relative energy breakdown of all benchmark
//! models on NEBULA in SNN and ANN modes.

use nebula_bench::table::print_table;
use nebula_core::energy::EnergyModel;
use nebula_core::engine::{evaluate_ann, evaluate_snn};
use nebula_workloads::zoo;

fn main() {
    let model = EnergyModel::default();
    for snn_mode in [true, false] {
        let mut rows = Vec::new();
        for (name, ds) in zoo::all_models() {
            let report = if snn_mode {
                evaluate_snn(&model, &ds, 300)
            } else {
                evaluate_ann(&model, &ds)
            };
            let f = report.total.fractions();
            let get = |k: &str| {
                f.iter()
                    .find(|(n, _)| *n == k)
                    .map_or(0.0, |(_, v)| *v * 100.0)
            };
            rows.push(vec![
                name.to_string(),
                format!("{:.1}", get("crossbar") + get("drivers")),
                format!("{:.1}", get("sram")),
                format!("{:.1}", get("edram")),
                format!("{:.1}", get("adc")),
                format!("{:.1}", get("noc") + get("neuron_units")),
            ]);
        }
        print_table(
            &format!(
                "Fig. 16 ({} mode): component energy shares (%)",
                if snn_mode { "SNN" } else { "ANN" }
            ),
            &["model", "xbar+drv", "sram", "edram", "adc", "other"],
            &rows,
        );
    }
    println!("\nPaper shape: SNN mode - memories (SRAM, then eDRAM) and crossbars");
    println!("dominate; ANN mode - crossbars and DACs are the major consumers.");
}
