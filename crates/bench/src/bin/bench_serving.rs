//! Multi-tenant serving benchmark: open-loop Poisson arrivals through
//! the dynamic batcher ([`nebula_core::serve`]) over the quantized
//! VGG/10 ANN and the circuit-level SNN at 150 timesteps.
//!
//! Two sweeps, both submitting a deterministic mixed ANN + SNN request
//! stream (alternating kinds, per-request SNN seeds, single-sample
//! inputs drawn round-robin from the test split):
//!
//! * **rate sweep** — several offered arrival rates at the default
//!   `max_batch`, reporting sustained requests/sec and p50/p99 latency
//!   (queueing + batching wait + service, as measured by the server);
//! * **batch sweep** — a fixed offered rate across `max_batch` ∈
//!   {1, 2, 4, 8}: the batch-size-vs-latency tradeoff curve (larger
//!   batches amortize the conductance-cache `prepare()` across
//!   coalesced requests at the cost of batching wait).
//!
//! After each leg the exact request stream is replayed one request at a
//! time through fresh `forward_sequential` / `run_sequential` reference
//! chips (same inputs, same per-request seeds) and every served output
//! is compared **bit for bit** — the binary aborts on any divergence,
//! so a recorded result file is also a bit-identity proof.
//!
//! Writes `results/BENCH_serving.json` (schema `nebula-bench-serving/1`,
//! documented in `EXPERIMENTS.md`). `NEBULA_SERVING_REQUESTS` overrides
//! the per-leg request count (CI smoke runs use a reduced set).

use std::time::{Duration, Instant};

use nebula_bench::setup::{trained, Workload};
use nebula_core::analog::{compile_ann, AnalogNetwork};
use nebula_core::analog_snn::{compile_snn_default, AnalogSpikingNetwork};
use nebula_core::serve::{InferenceRequest, ModelSpec, RequestKind, ServeConfig, Server};
use nebula_nn::convert::{ann_to_snn, ConversionConfig};
use nebula_nn::quant::{quantize_network, QuantConfig};
use nebula_tensor::Tensor;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// SNN integration window (the paper's VGG operating point).
const TIMESTEPS: usize = 150;

/// Offered arrival rates for the rate sweep, requests per second.
const RATES_HZ: [f64; 3] = [5.0, 20.0, 80.0];

/// Offered rate held while sweeping `max_batch`.
const BATCH_SWEEP_RATE_HZ: f64 = 40.0;

/// `max_batch` points for the batch-size-vs-latency curve.
const MAX_BATCHES: [usize; 4] = [1, 2, 4, 8];

fn requests_per_leg() -> usize {
    std::env::var("NEBULA_SERVING_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(40)
}

/// One request of the deterministic mixed stream.
struct Job {
    snn: bool,
    input: Tensor,
    seed: u64,
}

/// Builds the per-leg request stream: alternating ANN/SNN requests over
/// round-robin single-sample inputs, with per-request SNN seeds derived
/// from the leg seed.
fn jobs(samples: &Tensor, n: usize, leg_seed: u64) -> Vec<Job> {
    let rows = samples.shape()[0];
    let trailing: Vec<usize> = samples.shape()[1..].to_vec();
    let row_elems: usize = trailing.iter().product();
    let mut shape = vec![1usize];
    shape.extend_from_slice(&trailing);
    (0..n)
        .map(|i| {
            let s = i % rows;
            let input = Tensor::from_vec(
                samples.data()[s * row_elems..(s + 1) * row_elems].to_vec(),
                &shape,
            )
            .expect("sample slice");
            Job {
                snn: i % 2 == 1,
                input,
                seed: leg_seed * 1_000 + i as u64,
            }
        })
        .collect()
}

struct LegResult {
    name: String,
    offered_hz: f64,
    max_batch: usize,
    completed: usize,
    wall_s: f64,
    throughput_hz: f64,
    p50_ms: f64,
    p99_ms: f64,
    mean_batch: f64,
    largest_batch: usize,
    identical: bool,
}

/// Nearest-rank percentile over an unsorted latency sample.
fn percentile_ms(latencies: &mut [f64], pct: f64) -> f64 {
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    if latencies.is_empty() {
        return 0.0;
    }
    let idx = ((pct / 100.0) * (latencies.len() - 1) as f64).round() as usize;
    latencies[idx]
}

/// Shared per-run state every leg starts from: the programmed chip
/// prototypes, the sample pool and the per-leg request count.
struct Setup {
    ann: AnalogNetwork,
    snn: AnalogSpikingNetwork,
    samples: Tensor,
    n: usize,
}

/// Drives one leg: open-loop Poisson arrivals at `offered_hz` into a
/// fresh server, then a sequential replay of the identical stream for
/// the bit-identity check.
fn run_leg(
    setup: &Setup,
    name: &str,
    offered_hz: f64,
    max_batch: usize,
    leg_seed: u64,
) -> LegResult {
    let (ann, snn, n) = (&setup.ann, &setup.snn, setup.n);
    let stream = jobs(&setup.samples, n, leg_seed);
    let cfg = ServeConfig {
        queue_capacity: 64,
        max_batch,
        max_wait: Duration::from_millis(5),
    };
    let mut server = Server::start(
        cfg,
        vec![
            ModelSpec::ann("vgg10-ann", ann.clone(), 1),
            ModelSpec::snn("vgg10-snn", snn.clone(), 1),
        ],
    )
    .expect("server start");

    // Open-loop arrivals: exponential interarrival gaps from a seeded
    // stream, submitted on schedule regardless of completions (blocking
    // submit only intervenes as backpressure when the queue fills).
    let mut arrivals = ChaCha8Rng::seed_from_u64(leg_seed ^ 0xA221_7A15);
    let t0 = Instant::now();
    let mut next_at = Duration::ZERO;
    let mut handles = Vec::with_capacity(n);
    for job in &stream {
        let gap = -(1.0 - arrivals.gen::<f64>()).ln() / offered_hz;
        next_at += Duration::from_secs_f64(gap);
        if let Some(sleep) = next_at.checked_sub(t0.elapsed()) {
            std::thread::sleep(sleep);
        }
        let handle = server
            .submit(InferenceRequest {
                model: if job.snn { "vgg10-snn" } else { "vgg10-ann" }.into(),
                tenant: job.seed % 4,
                input: job.input.clone(),
                kind: if job.snn {
                    RequestKind::Snn {
                        timesteps: TIMESTEPS,
                        seed: job.seed,
                    }
                } else {
                    RequestKind::Ann
                },
            })
            .expect("submit");
        handles.push(handle);
    }
    let responses: Vec<_> = handles
        .into_iter()
        .map(|h| h.wait().expect("response"))
        .collect();
    let wall_s = t0.elapsed().as_secs_f64();
    server.shutdown();
    let stats = server.stats();
    let (reqs, batches, largest) = stats.models.iter().fold((0u64, 0u64, 0usize), |acc, m| {
        (
            acc.0 + m.requests,
            acc.1 + m.batches,
            acc.2.max(m.largest_batch),
        )
    });
    assert_eq!(reqs as usize, n, "every request dispatched exactly once");

    // Bit-identity replay: the same stream, one request at a time,
    // through fresh sequential reference chips.
    let mut ann_ref = ann.clone();
    let mut snn_ref = snn.clone();
    let mut identical = true;
    for (job, resp) in stream.iter().zip(&responses) {
        let expect = if job.snn {
            let mut r = rand::rngs::StdRng::seed_from_u64(job.seed);
            snn_ref
                .run_sequential(&job.input, TIMESTEPS, &mut r)
                .expect("replay snn")
        } else {
            ann_ref.forward_sequential(&job.input).expect("replay ann")
        };
        identical &= resp.output.shape() == expect.shape()
            && resp
                .output
                .data()
                .iter()
                .zip(expect.data())
                .all(|(a, b)| a.to_bits() == b.to_bits());
    }

    let mut latencies: Vec<f64> = responses
        .iter()
        .map(|r| (r.queued + r.service).as_secs_f64() * 1e3)
        .collect();
    let p50_ms = percentile_ms(&mut latencies, 50.0);
    let p99_ms = percentile_ms(&mut latencies, 99.0);
    LegResult {
        name: name.into(),
        offered_hz,
        max_batch,
        completed: responses.len(),
        wall_s,
        throughput_hz: responses.len() as f64 / wall_s.max(1e-9),
        p50_ms,
        p99_ms,
        mean_batch: if batches == 0 {
            0.0
        } else {
            reqs as f64 / batches as f64
        },
        largest_batch: largest,
        identical,
    }
}

fn leg_json(l: &LegResult) -> String {
    format!(
        "{{\"name\": \"{}\", \"offered_hz\": {:.1}, \"max_batch\": {}, \"completed\": {}, \"wall_s\": {:.3}, \"throughput_hz\": {:.2}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"mean_batch\": {:.3}, \"largest_batch\": {}, \"identical\": {}}}",
        l.name,
        l.offered_hz,
        l.max_batch,
        l.completed,
        l.wall_s,
        l.throughput_hz,
        l.p50_ms,
        l.p99_ms,
        l.mean_batch,
        l.largest_batch,
        l.identical
    )
}

fn main() {
    let n = requests_per_leg();
    let workers = nebula_tensor::pool::size();
    let t = trained(Workload::Vgg10, 500, 20);
    let q = quantize_network(&t.net, &t.train.take(64), &QuantConfig::default()).unwrap();
    let snn_functional = ann_to_snn(&q, &t.train.take(64), &ConversionConfig::default()).unwrap();
    let setup = Setup {
        ann: compile_ann(&q).unwrap(),
        snn: compile_snn_default(&snn_functional).unwrap(),
        samples: t.test.take(8).inputs,
        n,
    };

    let default_batch = ServeConfig::default().max_batch;
    let mut rate_legs = Vec::new();
    for (i, &rate) in RATES_HZ.iter().enumerate() {
        let name = format!("rate@{rate:.0}");
        let leg = run_leg(&setup, &name, rate, default_batch, 100 + i as u64);
        println!(
            "  {:<10} offered {:>5.1}/s  sustained {:>6.2}/s  p50 {:>8.2} ms  p99 {:>8.2} ms  mean batch {:>5.2}  identical: {}",
            leg.name, leg.offered_hz, leg.throughput_hz, leg.p50_ms, leg.p99_ms, leg.mean_batch, leg.identical
        );
        rate_legs.push(leg);
    }
    let mut batch_legs = Vec::new();
    for (i, &mb) in MAX_BATCHES.iter().enumerate() {
        let name = format!("batch@{mb}");
        let leg = run_leg(&setup, &name, BATCH_SWEEP_RATE_HZ, mb, 200 + i as u64);
        println!(
            "  {:<10} offered {:>5.1}/s  sustained {:>6.2}/s  p50 {:>8.2} ms  p99 {:>8.2} ms  mean batch {:>5.2}  identical: {}",
            leg.name, leg.offered_hz, leg.throughput_hz, leg.p50_ms, leg.p99_ms, leg.mean_batch, leg.identical
        );
        batch_legs.push(leg);
    }

    let all_identical = rate_legs
        .iter()
        .chain(&batch_legs)
        .all(|l| l.identical && l.completed == n);

    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"nebula-bench-serving/1\",\n");
    json.push_str("  \"workload\": \"VGG/10\",\n");
    json.push_str(&format!("  \"timesteps\": {TIMESTEPS},\n"));
    json.push_str(&format!("  \"requests_per_leg\": {n},\n"));
    json.push_str(&format!("  \"workers\": {workers},\n"));
    json.push_str(&format!("  \"identical\": {all_identical},\n"));
    json.push_str("  \"rate_sweep\": [\n");
    for (i, l) in rate_legs.iter().enumerate() {
        json.push_str("    ");
        json.push_str(&leg_json(l));
        json.push_str(if i + 1 < rate_legs.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"batch_sweep\": [\n");
    for (i, l) in batch_legs.iter().enumerate() {
        json.push_str("    ");
        json.push_str(&leg_json(l));
        json.push_str(if i + 1 < batch_legs.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ]\n}\n");

    let path = if std::path::Path::new("results").is_dir() {
        "results/BENCH_serving.json"
    } else {
        "BENCH_serving.json"
    };
    std::fs::write(path, &json).expect("write BENCH_serving.json");
    println!("\nBENCH serving (VGG/10 ANN + SNN@{TIMESTEPS}, {n} requests/leg), written to {path}");
    assert!(
        all_identical,
        "served outputs diverged from the sequential reference"
    );
}
