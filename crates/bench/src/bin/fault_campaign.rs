//! Fault-injection Monte-Carlo campaign: accuracy vs. per-cell fault
//! rate for every device fault class, plus the graceful-degradation
//! (dead-core remap) energy/latency penalties.
//!
//! Extends §IV-D beyond Gaussian mismatch: stuck-at-Gmin/Gmax cells,
//! domain-wall pinning offsets, retention drift and TMR degradation are
//! injected into the 16-level quantized VGG/10 weights at several rates,
//! and both ANN and SNN@150 accuracy curves are recorded. The zero-fault
//! corner is computed exactly like `sec4d_noise` and must reproduce its
//! recorded clean accuracies. Writes `results/BENCH_faults.json` (schema
//! documented in `EXPERIMENTS.md`).
//!
//! `NEBULA_FAULT_TRIALS` overrides the Monte-Carlo trials per
//! (class, rate) point (default 2).

use nebula_bench::par::par_map;
use nebula_bench::setup::{trained, Workload};
use nebula_bench::table::{pct, print_table};
use nebula_core::energy::EnergyModel;
use nebula_core::engine::{
    evaluate_ann_degraded, evaluate_snn_degraded, par_evaluate_suite, SuiteJob, SuiteMode,
};
use nebula_core::fault::{ChipFaultState, RemapPolicy};
use nebula_device::fault::{FaultClass, FaultModel, NonidealityModel};
use nebula_device::units::Seconds;
use nebula_nn::convert::{ann_to_snn, ConversionConfig};
use nebula_nn::quant::{quantize_network, QuantConfig};
use nebula_nn::Network;
use nebula_workloads::zoo;
use rand_chacha::ChaCha8Rng;

/// 4-bit devices: 16 conductance levels.
const LEVELS: usize = 16;
/// SNN evidence-integration window (matches `sec4d_noise`).
const TIMESTEPS: u32 = 150;
/// Time since programming when drift-faulted cells are read. At the
/// default 0.02/s relaxation rate this leaves e^-0.6 ≈ 55% of the
/// original signed weight.
const ELAPSED: Seconds = Seconds(30.0);
/// Per-cell fault rates swept per class (0 is the shared clean corner).
const RATES: [f64; 3] = [0.02, 0.05, 0.10];

/// Recorded §IV-D clean accuracies (results/sec4d_noise.txt).
const SEC4D_ANN_CLEAN: f64 = 100.00;
const SEC4D_SNN_CLEAN: f64 = 100.00;

fn trials_per_point() -> usize {
    std::env::var("NEBULA_FAULT_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(2)
}

/// Injects `model` faults into every weight tensor of a copy of `q`,
/// using each tensor's own |w| range as the device clip. Returns the
/// faulted network and the number of cells that drew a fault.
fn inject<R: rand::Rng>(q: &Network, model: &FaultModel, rng: &mut R) -> (Network, usize) {
    let nonideal = NonidealityModel::faults_only(*model);
    let mut noisy = q.clone();
    let mut faulty = 0usize;
    for layer in noisy.layers_mut() {
        if layer.is_weight_layer() {
            for p in layer.params_mut() {
                let clip = p.value.data().iter().fold(0.0f32, |m, v| m.max(v.abs())) as f64;
                if clip == 0.0 {
                    continue;
                }
                faulty +=
                    nonideal.apply_weight_slice_f32(p.value.data_mut(), clip, LEVELS, ELAPSED, rng);
            }
        }
    }
    (noisy, faulty)
}

struct CurvePoint {
    class: FaultClass,
    rate: f64,
    ann_pct: f64,
    snn_pct: f64,
    faulty_cells: f64,
}

struct DegradationPoint {
    mode: &'static str,
    dead_cores: usize,
    pool: usize,
    fold_factor: usize,
    latency_ratio: f64,
    avg_power_ratio: f64,
    estimated_accuracy_loss: f64,
    within_policy: bool,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let trials = trials_per_point();
    let t = trained(Workload::Vgg10, 500, 20);
    let q = quantize_network(&t.net, &t.train.take(64), &QuantConfig::default()).unwrap();

    // --- zero-fault corner: exactly the sec4d_noise clean computation ---
    let mut clean = q.clone();
    let ann_clean = clean.accuracy(&t.test.inputs, &t.test.labels).unwrap() * 100.0;
    let cfg = ConversionConfig::default();
    let mut snn_rng = <ChaCha8Rng as rand::SeedableRng>::seed_from_u64(2);
    let mut snn = ann_to_snn(&q, &t.train.take(64), &cfg).unwrap();
    let snn_clean = snn
        .accuracy(
            &t.test.inputs,
            &t.test.labels,
            TIMESTEPS as usize,
            &mut snn_rng,
        )
        .unwrap()
        * 100.0;
    assert!(
        (ann_clean - SEC4D_ANN_CLEAN).abs() < 0.005 && (snn_clean - SEC4D_SNN_CLEAN).abs() < 0.005,
        "zero-fault corner drifted from the recorded §IV-D figures: \
         ANN {ann_clean:.2} vs {SEC4D_ANN_CLEAN:.2}, SNN {snn_clean:.2} vs {SEC4D_SNN_CLEAN:.2}"
    );

    // --- Monte-Carlo accuracy curves per fault class ---------------------
    // One work item per (class, rate, trial); the seed encodes the point
    // so the campaign is order-independent and byte-reproducible.
    let points: Vec<(usize, usize, usize)> = (0..FaultClass::ALL.len())
        .flat_map(|c| (0..RATES.len()).flat_map(move |r| (0..trials).map(move |k| (c, r, k))))
        .collect();
    let results = par_map(&points, |&(c, r, k)| {
        let class = FaultClass::ALL[c];
        let rate = RATES[r];
        let seed = 0xFA17 + (c as u64) * 1000 + (r as u64) * 100 + k as u64;
        let mut rng = <ChaCha8Rng as rand::SeedableRng>::seed_from_u64(seed);
        let model = FaultModel::single(class, rate);
        let (mut noisy, faulty) = inject(&q, &model, &mut rng);
        let ann = noisy.accuracy(&t.test.inputs, &t.test.labels).unwrap() * 100.0;
        let mut snn = ann_to_snn(&noisy, &t.train.take(64), &cfg).unwrap();
        let snn_acc = snn
            .accuracy(&t.test.inputs, &t.test.labels, TIMESTEPS as usize, &mut rng)
            .unwrap()
            * 100.0;
        (ann, snn_acc, faulty)
    });

    let mut curve = Vec::new();
    for (c, &class) in FaultClass::ALL.iter().enumerate() {
        for (r, &rate) in RATES.iter().enumerate() {
            let mut ann_sum = 0.0;
            let mut snn_sum = 0.0;
            let mut faulty_sum = 0.0;
            for (&(pc, pr, _), &(ann, snn_acc, faulty)) in points.iter().zip(&results) {
                if pc == c && pr == r {
                    ann_sum += ann;
                    snn_sum += snn_acc;
                    faulty_sum += faulty as f64;
                }
            }
            curve.push(CurvePoint {
                class,
                rate,
                ann_pct: ann_sum / trials as f64,
                snn_pct: snn_sum / trials as f64,
                faulty_cells: faulty_sum / trials as f64,
            });
        }
    }

    // --- graceful degradation: dead cores, remap, energy/latency ---------
    let energy_model = EnergyModel::default();
    let descriptors = zoo::with_default_activities(zoo::vgg13(10));
    let baseline = par_evaluate_suite(
        &energy_model,
        &[
            SuiteJob::new("VGG-13", descriptors.clone(), SuiteMode::Ann),
            SuiteJob::new(
                "VGG-13",
                descriptors.clone(),
                SuiteMode::Snn {
                    timesteps: TIMESTEPS,
                },
            ),
        ],
    );
    let policy = RemapPolicy::default();
    let mut degradation = Vec::new();
    for &(mode, pool, kills) in &[
        ("ANN", energy_model.ann_core_pool, [0usize, 4, 8, 13]),
        ("SNN", energy_model.snn_core_pool, [0usize, 60, 120, 175]),
    ] {
        let clean_latency = if mode == "ANN" {
            baseline[0].latency()
        } else {
            baseline[1].latency()
        };
        let clean_power = if mode == "ANN" {
            baseline[0].avg_power()
        } else {
            baseline[1].avg_power()
        };
        for &dead in &kills {
            let mut state = ChipFaultState::healthy(pool);
            for core in 0..dead {
                state.kill_core(core);
            }
            let deg = if mode == "ANN" {
                evaluate_ann_degraded(&energy_model, &descriptors, &state, &policy)
            } else {
                evaluate_snn_degraded(&energy_model, &descriptors, TIMESTEPS, &state, &policy)
            }
            .expect("pool keeps at least one healthy core");
            degradation.push(DegradationPoint {
                mode,
                dead_cores: dead,
                pool,
                fold_factor: deg.remap.fold_factor,
                latency_ratio: (deg.report.latency / clean_latency).max(0.0),
                avg_power_ratio: (deg.report.avg_power / clean_power).max(0.0),
                estimated_accuracy_loss: deg.remap.estimated_accuracy_loss,
                within_policy: deg.remap.within_policy,
            });
        }
    }

    // --- JSON -------------------------------------------------------------
    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"nebula-bench-faults/1\",\n");
    json.push_str("  \"workload\": \"VGG/10\",\n");
    json.push_str(&format!("  \"timesteps\": {TIMESTEPS},\n"));
    json.push_str(&format!("  \"trials_per_point\": {trials},\n"));
    json.push_str(&format!(
        "  \"elapsed_s\": {:.1},\n  \"levels\": {LEVELS},\n",
        ELAPSED.0
    ));
    json.push_str(&format!(
        "  \"clean\": {{\"ann_pct\": {ann_clean:.2}, \"snn_pct\": {snn_clean:.2}, \
         \"matches_sec4d\": true}},\n"
    ));
    json.push_str("  \"curves\": [\n");
    for (i, p) in curve.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"class\": \"{}\", \"rate\": {:.2}, \"ann_pct\": {:.2}, \"snn_pct\": {:.2}, \
             \"faulty_cells_mean\": {:.1}}}{}\n",
            json_escape(p.class.name()),
            p.rate,
            p.ann_pct,
            p.snn_pct,
            p.faulty_cells,
            if i + 1 < curve.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"degradation\": [\n");
    for (i, d) in degradation.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"dead_cores\": {}, \"pool\": {}, \"fold_factor\": {}, \
             \"latency_ratio\": {:.3}, \"avg_power_ratio\": {:.3}, \
             \"estimated_accuracy_loss\": {:.4}, \"within_policy\": {}}}{}\n",
            d.mode,
            d.dead_cores,
            d.pool,
            d.fold_factor,
            d.latency_ratio,
            d.avg_power_ratio,
            d.estimated_accuracy_loss,
            d.within_policy,
            if i + 1 < degradation.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let path = if std::path::Path::new("results").is_dir() {
        "results/BENCH_faults.json"
    } else {
        "BENCH_faults.json"
    };
    std::fs::write(path, &json).expect("write BENCH_faults.json");

    // --- human-readable summary ------------------------------------------
    let rows: Vec<Vec<String>> = curve
        .iter()
        .map(|p| {
            vec![
                p.class.name().to_string(),
                format!("{:.0}%", p.rate * 100.0),
                pct(p.ann_pct),
                pct(p.snn_pct),
                format!("{:.0}", p.faulty_cells),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Fault campaign: VGG/10, {trials} trial(s)/point (clean: ANN {ann_clean:.2}%, \
             SNN@{TIMESTEPS} {snn_clean:.2}%)"
        ),
        &["class", "rate", "ANN %", "SNN %", "faulty cells"],
        &rows,
    );
    let deg_rows: Vec<Vec<String>> = degradation
        .iter()
        .map(|d| {
            vec![
                d.mode.to_string(),
                format!("{}/{}", d.dead_cores, d.pool),
                format!("x{}", d.fold_factor),
                format!("{:.2}", d.latency_ratio),
                format!("{:.2}", d.avg_power_ratio),
                format!("{:.4}", d.estimated_accuracy_loss),
                d.within_policy.to_string(),
            ]
        })
        .collect();
    print_table(
        "Graceful degradation: dead cores remapped (VGG-13 energy model)",
        &[
            "mode",
            "dead/pool",
            "fold",
            "latency x",
            "power x",
            "est. acc loss",
            "in policy",
        ],
        &deg_rows,
    );
    println!("\nWritten to {path}");
}
