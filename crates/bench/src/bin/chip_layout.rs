//! Chip layout study: place each benchmark's layers onto the 14×14 mesh
//! and account for the NoC traffic one inference generates — the
//! system-level view of Fig. 6(b).

use nebula_bench::table::print_table;
use nebula_core::chip::{Chip, ChipConfig};
use nebula_core::mapper::map_network;
use nebula_workloads::zoo;

fn main() {
    let mut rows = Vec::new();
    for (name, ds) in zoo::all_models() {
        let mut chip = Chip::new(ChipConfig::default()).unwrap();
        let mappings = map_network(&ds);
        // Folded placement: over-capacity models wrap around the pool
        // (time multiplexing) instead of erroring — this study wants a
        // row for every model. `Chip::place` is the checked variant.
        let snn_place = chip.place_folded(&mappings, true);
        let ann_place = chip.place_folded(&mappings, false);
        let flit_hops = chip
            .route_interlayer_traffic(&snn_place, &mappings, 1)
            .unwrap();
        rows.push(vec![
            name.to_string(),
            snn_place.cores_demanded.to_string(),
            format!(
                "{}",
                if snn_place.fits {
                    "yes"
                } else {
                    "no (multiplexed)"
                }
            ),
            format!(
                "{}",
                if ann_place.fits {
                    "yes"
                } else {
                    "no (multiplexed)"
                }
            ),
            flit_hops.to_string(),
        ]);
    }
    print_table(
        "Chip layout: core demand and per-inference NoC traffic (spike flits)",
        &[
            "model",
            "cores",
            "fits 182 SNN NCs",
            "fits 14 ANN NCs",
            "flit-hops/pass",
        ],
        &rows,
    );
    println!("\nThe 182-core SNN fabric absorbs every benchmark; the 14-core ANN");
    println!("pool must time-multiplex the biggest networks - consistent with a");
    println!("chip that dedicates 13/14ths of its area to the low-power mode.");
}
