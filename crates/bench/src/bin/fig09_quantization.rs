//! Figure 9: accuracy versus weight discretization levels (activations
//! fixed at 4 bits) for the VGG and MobileNet workloads.

use nebula_bench::setup::{trained, Workload};
use nebula_bench::table::{pct, print_table};
use nebula_nn::quant::{quantize_network, QuantConfig};

fn main() {
    for w in [Workload::Vgg10, Workload::Mobilenet10] {
        let t = trained(w, 500, 20);
        let mut fp = t.net.clone();
        let fp_acc = fp.accuracy(&t.test.inputs, &t.test.labels).unwrap() * 100.0;
        let mut rows = vec![vec!["FP32".to_string(), pct(fp_acc)]];
        for levels in [32usize, 16, 8, 4, 2] {
            let cfg = QuantConfig::with_weight_levels(levels);
            let mut q = quantize_network(&t.net, &t.train.take(64), &cfg).unwrap();
            let acc = q.accuracy(&t.test.inputs, &t.test.labels).unwrap() * 100.0;
            rows.push(vec![format!("{levels} levels"), pct(acc)]);
        }
        print_table(
            &format!(
                "Fig. 9 ({}): accuracy vs weight discretization (4-bit activations)",
                w.name()
            ),
            &["weights", "accuracy %"],
            &rows,
        );
    }
    println!("\nShape check: accuracy holds near FP down to 16 levels (4 bits) -");
    println!("the paper's operating point - and collapses at binary weights.");
}
