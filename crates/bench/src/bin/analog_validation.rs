//! Circuit-level validation: run trained, 4-bit-quantized networks
//! *through the DW-MTJ crossbar models* and compare against digital
//! execution — the functional-fidelity check behind the whole
//! architecture (and the §IV-D mismatch study at circuit level).

use nebula_bench::setup::{trained, Workload};
use nebula_bench::table::{pct, print_table};
use nebula_core::analog::{compile_ann, compile_ann_with_mismatch};
use nebula_nn::quant::{quantize_network, QuantConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rows = Vec::new();
    for w in [Workload::Mlp, Workload::Lenet] {
        let t = trained(w, 400, 15);
        let q = quantize_network(&t.net, &t.train.take(64), &QuantConfig::default()).unwrap();
        let mut digital = q.clone();
        let eval = t.test.take(60);
        let digital_acc = digital.accuracy(&eval.inputs, &eval.labels).unwrap() * 100.0;

        let mut analog = compile_ann(&q).unwrap();
        let analog_acc = analog.accuracy(&eval.inputs, &eval.labels).unwrap() * 100.0;

        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut mismatched = compile_ann_with_mismatch(&q, 0.10, &mut rng).unwrap();
        let mismatch_acc = mismatched.accuracy(&eval.inputs, &eval.labels).unwrap() * 100.0;

        rows.push(vec![
            w.name().to_string(),
            pct(digital_acc),
            pct(analog_acc),
            pct(mismatch_acc),
            analog.supertile_count().to_string(),
            format!("{}", analog.program_energy()),
            format!("{}", analog.read_energy()),
        ]);
    }
    print_table(
        "Analog crossbar execution vs digital (4-bit quantized, 60 test samples)",
        &[
            "model",
            "digital %",
            "analog %",
            "analog+10% mismatch %",
            "supertiles",
            "program E",
            "read E",
        ],
        &rows,
    );
    println!("\nAnalog inference through the device models matches digital 4-bit");
    println!("inference (same grid), and tolerates 10% device mismatch with only");
    println!("a small accuracy cost - the paper's robustness argument, executed");
    println!("at circuit level rather than as a weight-space abstraction.");
}
