//! Ablation: morphable tiles. A monolithic fixed-size crossbar wastes
//! synapses on small kernels (the paper's VGG-layer-1 example: 27×64 of
//! 128×128 used); the morphable 2×2 decomposition lets small kernels run
//! on independent atomic crossbars.

use nebula_bench::table::print_table;
use nebula_core::mapper::map_network;
use nebula_workloads::zoo;

fn utilization_fixed(rf: usize, kernels: usize, side: usize) -> f64 {
    // One rigid side×side array per kernel group, no decomposition.
    let stacks = rf.div_ceil(side);
    let groups = kernels.div_ceil(side);
    (rf * kernels) as f64 / ((stacks * groups) as f64 * (side * side) as f64)
}

fn main() {
    let mut rows = Vec::new();
    for (name, ds) in zoo::all_models() {
        let mappings = map_network(&ds);
        let morphable: f64 =
            mappings.iter().map(|m| m.utilization).sum::<f64>() / mappings.len() as f64;
        let fixed_256: f64 = ds
            .iter()
            .map(|d| utilization_fixed(d.receptive_field, d.kernels, 256))
            .sum::<f64>()
            / ds.len() as f64;
        let fixed_512: f64 = ds
            .iter()
            .map(|d| utilization_fixed(d.receptive_field, d.kernels, 512))
            .sum::<f64>()
            / ds.len() as f64;
        rows.push(vec![
            name.to_string(),
            format!("{:.1}%", morphable * 100.0),
            format!("{:.1}%", fixed_256 * 100.0),
            format!("{:.1}%", fixed_512 * 100.0),
        ]);
    }
    print_table(
        "Ablation: mean synapse utilization, morphable 128-ACs vs rigid arrays",
        &["model", "morphable (128)", "rigid 256x256", "rigid 512x512"],
        &rows,
    );
    println!("\nMorphable tiles keep utilization high for small receptive fields");
    println!("(depthwise/early layers) where rigid large arrays waste synapses -");
    println!("and low utilization is wasted area AND wasted read energy.");
}
