//! Figure 15: component-wise energy breakdown of VGG on NEBULA in SNN
//! and ANN modes.

use nebula_bench::table::print_table;
use nebula_core::energy::EnergyModel;
use nebula_core::engine::{par_evaluate_suite, SuiteJob, SuiteMode, SuiteOutcome};
use nebula_workloads::zoo;

fn main() {
    let model = EnergyModel::default();
    let ds = zoo::vgg13(10);
    let jobs = [
        SuiteJob::new("SNN (T=300)", ds.clone(), SuiteMode::Snn { timesteps: 300 }),
        SuiteJob::new("ANN", ds, SuiteMode::Ann),
    ];
    for suite_report in par_evaluate_suite(&model, &jobs) {
        let SuiteOutcome::Inference(report) = &suite_report.outcome else {
            unreachable!("fig15 jobs are pure evaluations");
        };
        let rows: Vec<Vec<String>> = report
            .total
            .fractions()
            .into_iter()
            .map(|(name, f)| vec![name.to_string(), format!("{:.1}%", f * 100.0)])
            .collect();
        print_table(
            &format!(
                "Fig. 15 (VGG, {}): component energy shares",
                suite_report.label
            ),
            &["component", "share"],
            &rows,
        );
        println!("total energy: {:.3} uJ", report.total_energy().0 * 1e6);
    }
    println!("\nPaper shape: SNN mode is dominated by SRAM/eDRAM (paper: SRAM");
    println!("36.6%) with a visible ADC share (~12%); ANN mode is dominated by");
    println!("crossbars + DACs (paper: 65.5%).");
}
