//! Figure 15: component-wise energy breakdown of VGG on NEBULA in SNN
//! and ANN modes.

use nebula_bench::table::print_table;
use nebula_core::energy::EnergyModel;
use nebula_core::engine::{evaluate_ann, evaluate_snn};
use nebula_workloads::zoo;

fn main() {
    let model = EnergyModel::default();
    let ds = zoo::vgg13(10);
    for (mode, report) in [
        ("SNN (T=300)", evaluate_snn(&model, &ds, 300)),
        ("ANN", evaluate_ann(&model, &ds)),
    ] {
        let rows: Vec<Vec<String>> = report
            .total
            .fractions()
            .into_iter()
            .map(|(name, f)| vec![name.to_string(), format!("{:.1}%", f * 100.0)])
            .collect();
        print_table(
            &format!("Fig. 15 (VGG, {mode}): component energy shares"),
            &["component", "share"],
            &rows,
        );
        println!("total energy: {:.3} uJ", report.total_energy().0 * 1e6);
    }
    println!("\nPaper shape: SNN mode is dominated by SRAM/eDRAM (paper: SRAM");
    println!("36.6%) with a visible ADC share (~12%); ANN mode is dominated by");
    println!("crossbars + DACs (paper: 65.5%).");
}
