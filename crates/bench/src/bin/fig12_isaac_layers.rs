//! Figure 12: layer-wise energy of ISAAC (4-bit adapted) normalized to
//! NEBULA-ANN, for AlexNet and MobileNet-v1.

use nebula_baselines::compare::isaac_vs_nebula_ann;
use nebula_baselines::isaac::IsaacConfig;
use nebula_bench::par::par_map;
use nebula_bench::table::{print_table, ratio};
use nebula_core::energy::EnergyModel;
use nebula_workloads::zoo;

fn main() {
    let model = EnergyModel::default();
    let cfg = IsaacConfig::adapted_4bit();
    let cases = [
        ("AlexNet", zoo::alexnet(), 2.8),
        ("MobileNet-v1", zoo::mobilenet_v1(10), 7.9),
    ];
    let comparisons = par_map(&cases, |(_, ds, _)| isaac_vs_nebula_ann(&cfg, &model, ds));
    for ((name, ds, paper), (layers, mean)) in cases.iter().zip(&comparisons) {
        let rows: Vec<Vec<String>> = layers
            .iter()
            .zip(ds)
            .map(|(l, d)| {
                vec![
                    l.name.clone(),
                    if d.is_depthwise() {
                        "depthwise".into()
                    } else {
                        "dense".into()
                    },
                    d.receptive_field.to_string(),
                    ratio(l.ratio),
                ]
            })
            .collect();
        print_table(
            &format!("Fig. 12 ({name}): ISAAC energy / NEBULA-ANN energy per layer"),
            &["layer", "kind", "R_f", "ISAAC/NEBULA"],
            &rows,
        );
        println!("mean ratio: {} (paper reports ~{paper}x)", ratio(*mean));
    }
    println!("\nShape check: depthwise (small-R_f) layers show the largest savings;");
    println!("MobileNet's mean exceeds AlexNet's.");
}
