//! Ablation: IF reset mode (subtract vs zero) and input encoding
//! (Poisson vs constant-current) for the converted SNN.

use nebula_bench::setup::{trained, Workload};
use nebula_bench::table::{pct, print_table};
use nebula_nn::convert::{ann_to_snn, ConversionConfig};
use nebula_nn::{InputEncoding, ResetMode};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let t = trained(Workload::Lenet, 500, 15);
    let mut rows = Vec::new();
    for (reset, rname) in [(ResetMode::Subtract, "subtract"), (ResetMode::Zero, "zero")] {
        for (enc, ename) in [
            (InputEncoding::Poisson, "poisson"),
            (InputEncoding::Constant, "constant"),
        ] {
            let cfg = ConversionConfig {
                reset,
                encoding: enc,
                ..ConversionConfig::default()
            };
            let mut snn = ann_to_snn(&t.net, &t.train.take(64), &cfg).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(13);
            let mut row = vec![rname.to_string(), ename.to_string()];
            for timesteps in [5usize, 15, 60] {
                let acc = snn
                    .accuracy(&t.test.inputs, &t.test.labels, timesteps, &mut rng)
                    .unwrap();
                row.push(pct(acc * 100.0));
            }
            rows.push(row);
        }
    }
    print_table(
        "Ablation: reset mode x input encoding (LeNet SNN accuracy %)",
        &["reset", "encoding", "T=5", "T=15", "T=60"],
        &rows,
    );
    println!("\nSubtract-reset preserves super-threshold charge and converges in");
    println!("fewer timesteps; zero-reset (the raw device behaviour) needs longer");
    println!("windows. Constant-current encoding removes input sampling noise.");
}
