//! Ablation: the device's TMR (G_max/G_min) ratio. A smaller conductance
//! window squeezes the same 16 states into a narrower range, so a fixed
//! absolute conductance noise becomes a larger *relative* weight error.
//! The paper cites 7x as experimentally observed and >10x on roadmaps.

use nebula_bench::setup::{trained, Workload};
use nebula_bench::table::{pct, print_table};
use nebula_device::variation::VariationModel;
use nebula_nn::quant::{quantize_network, QuantConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let t = trained(Workload::Vgg10, 500, 20);
    let q = quantize_network(&t.net, &t.train.take(64), &QuantConfig::default()).unwrap();
    let mut clean = q.clone();
    let clean_acc = clean.accuracy(&t.test.inputs, &t.test.labels).unwrap() * 100.0;
    println!("clean 16-level accuracy: {clean_acc:.2}%");

    // Fixed absolute device noise of 2% of the TMR-7 range; a TMR-r
    // device sees that same noise over a range scaled by
    // (r-1)/(r+1) relative to (7-1)/(7+1).
    let base_sigma = 0.02;
    let rel_range = |r: f64| (r - 1.0) / (r + 1.0);
    let mut rows = Vec::new();
    for tmr in [2.0f64, 3.0, 5.0, 7.0, 10.0, 20.0] {
        let sigma = base_sigma * rel_range(7.0) / rel_range(tmr);
        let variation = VariationModel::new(sigma);
        let trials = 6;
        let mut acc_sum = 0.0;
        for trial in 0..trials {
            let mut rng = ChaCha8Rng::seed_from_u64(40 + trial);
            let mut noisy = q.clone();
            for layer in noisy.layers_mut() {
                if layer.is_weight_layer() {
                    for p in layer.params_mut() {
                        variation.perturb_slice_f32(p.value.data_mut(), &mut rng);
                    }
                }
            }
            acc_sum += noisy.accuracy(&t.test.inputs, &t.test.labels).unwrap() * 100.0;
        }
        rows.push(vec![
            format!("{tmr:.0}x"),
            format!("{:.1}%", sigma * 100.0),
            pct(acc_sum / trials as f64),
            pct(clean_acc - acc_sum / trials as f64),
        ]);
    }
    print_table(
        "Ablation: TMR ratio -> effective weight noise -> accuracy (16-level VGG)",
        &["TMR", "weight sigma", "accuracy %", "drop"],
        &rows,
    );
    println!("\nThe paper's 7x experimental TMR keeps the accuracy drop in the ~1%");
    println!("regime; very low ratios (2-3x) amplify device noise into real loss.");
}
