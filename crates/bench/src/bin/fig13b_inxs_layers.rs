//! Figure 13(b): layer-wise energy of INXS normalized to NEBULA-SNN for
//! VGG (CIFAR-10), 300 timesteps.

use nebula_baselines::compare::inxs_vs_nebula_snn;
use nebula_baselines::inxs::InxsConfig;
use nebula_bench::table::{print_table, ratio};
use nebula_core::energy::EnergyModel;
use nebula_workloads::zoo;

fn main() {
    let model = EnergyModel::default();
    let cfg = InxsConfig::default();
    let ds = zoo::vgg13(10);
    let (layers, mean) = inxs_vs_nebula_snn(&cfg, &model, &ds, 300);
    let rows: Vec<Vec<String>> = layers
        .iter()
        .zip(&ds)
        .map(|(l, d)| {
            vec![
                l.name.clone(),
                d.receptive_field.to_string(),
                ratio(l.ratio),
            ]
        })
        .collect();
    print_table(
        "Fig. 13(b): INXS energy / NEBULA-SNN energy per VGG layer (T=300)",
        &["layer", "R_f", "INXS/NEBULA"],
        &rows,
    );
    println!("mean ratio: {} (paper reports ~45x)", ratio(mean));
    println!("\nShape check: FC layers (small R_f on CIFAR) save more than the");
    println!("deep conv layers; all layers win.");
}
