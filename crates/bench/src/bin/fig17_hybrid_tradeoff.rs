//! Figure 17: SNN vs hybrid vs ANN energy (top) and power (bottom) on
//! NEBULA for AlexNet, VGG and SVHN.

use nebula_bench::table::{print_table, ratio};
use nebula_core::energy::EnergyModel;
use nebula_core::engine::{par_evaluate_suite, SuiteJob, SuiteMode, SuiteReport};
use nebula_workloads::zoo;

fn main() {
    let model = EnergyModel::default();
    let cases = [
        ("AlexNet", zoo::alexnet(), 500u32),
        ("VGG-13", zoo::vgg13(10), 300),
        ("SVHN-Net", zoo::svhn_net(), 100),
    ];
    // Per model: SNN@t_full, Hyb-1..3 at shrinking windows, ANN — all 15
    // configurations evaluate concurrently.
    let jobs: Vec<SuiteJob> = cases
        .iter()
        .flat_map(|(name, ds, t_full)| {
            let mut model_jobs = vec![SuiteJob::new(
                *name,
                ds.clone(),
                SuiteMode::Snn { timesteps: *t_full },
            )];
            // Progressively more ANN layers at progressively fewer timesteps.
            for (k, t) in [(1usize, t_full * 3 / 4), (2, t_full / 2), (3, t_full / 3)] {
                model_jobs.push(SuiteJob::new(
                    *name,
                    ds.clone(),
                    SuiteMode::Hybrid {
                        ann_layers: k,
                        timesteps: t.max(1),
                    },
                ));
            }
            model_jobs.push(SuiteJob::new(*name, ds.clone(), SuiteMode::Ann));
            model_jobs
        })
        .collect();
    let reports = par_evaluate_suite(&model, &jobs);
    for (group, (name, _, t_full)) in reports.chunks(5).zip(&cases) {
        let [snn, h1, h2, h3, ann]: &[SuiteReport; 5] = group.try_into().unwrap();
        let snn_e = snn.total_energy().0;
        let ann_p = ann.avg_power().0;
        let mut rows = vec![vec![
            format!("SNN@{t_full}"),
            ratio(1.0),
            ratio(snn.avg_power().0 / ann_p),
            format!("{:.2} uJ", snn_e * 1e6),
        ]];
        for h in [h1, h2, h3] {
            rows.push(vec![
                h.mode_label().to_string(),
                ratio(h.total_energy().0 / snn_e),
                ratio(h.avg_power().0 / ann_p),
                format!("{:.2} uJ", h.total_energy().0 * 1e6),
            ]);
        }
        rows.push(vec![
            "ANN".into(),
            ratio(ann.total_energy().0 / snn_e),
            ratio(1.0),
            format!("{:.2} uJ", ann.total_energy().0 * 1e6),
        ]);
        print_table(
            &format!("Fig. 17 ({name}): energy (vs SNN) and power (vs ANN)"),
            &["config", "energy/SNN", "power/ANN", "energy"],
            &rows,
        );
        println!(
            "ANN/SNN power ratio: {}  (paper: >= 6.25x)",
            ratio(ann_p / snn.avg_power().0)
        );
        println!(
            "SNN/ANN energy ratio: {} (paper: ~5-10x)",
            ratio(snn_e / ann.total_energy().0)
        );
    }
    println!("\nPaper shape: hybrids sit between pure SNN and pure ANN on both");
    println!("axes - less energy than SNN, less power than ANN.");
}
