//! Ablation: kernel replication cap. Spare SNN cores host weight copies
//! to process multiple output positions per timestep; this sweep shows
//! the latency/power trade as the cap varies.

use nebula_bench::table::{print_table, ratio};
use nebula_core::energy::EnergyModel;
use nebula_core::engine::{evaluate_ann, evaluate_snn};
use nebula_workloads::zoo;

fn main() {
    let ds = zoo::vgg13(10);
    let mut rows = Vec::new();
    let base_ann = {
        let model = EnergyModel::default();
        evaluate_ann(&model, &ds)
    };
    for cap in [1.0f64, 2.0, 4.0, 8.0, 16.0] {
        let model = EnergyModel {
            max_replication: cap,
            ..EnergyModel::default()
        };
        let snn = evaluate_snn(&model, &ds, 300);
        rows.push(vec![
            format!("{cap:.0}"),
            format!("{:.2} ms", snn.latency.0 * 1e3),
            format!("{}", snn.avg_power),
            format!("{:.1} uJ", snn.total_energy().0 * 1e6),
            ratio(base_ann.avg_power.0 / snn.avg_power.0),
        ]);
    }
    print_table(
        "Ablation: SNN kernel-replication cap (VGG-13, T=300)",
        &["cap", "latency", "avg power", "energy", "ANN/SNN power"],
        &rows,
    );
    println!("\nReplication trades instantaneous power for latency at constant");
    println!("energy; the 13x-larger SNN fabric is what makes SNN latency usable.");
}
