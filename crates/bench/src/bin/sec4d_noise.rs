//! Section IV-D: Monte-Carlo robustness — 10% multiplicative weight
//! variation during inference of 16-level quantized ANN and SNN models.

use nebula_bench::setup::{trained, Workload};
use nebula_bench::table::{pct, print_table};
use nebula_device::variation::VariationModel;
use nebula_nn::convert::{ann_to_snn, ConversionConfig};
use nebula_nn::quant::{quantize_network, QuantConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let t = trained(Workload::Vgg10, 500, 20);
    let q = quantize_network(&t.net, &t.train.take(64), &QuantConfig::default()).unwrap();
    let mut clean = q.clone();
    let ann_clean = clean.accuracy(&t.test.inputs, &t.test.labels).unwrap() * 100.0;
    let cfg = ConversionConfig::default();
    let mut snn_rng = ChaCha8Rng::seed_from_u64(2);
    let mut snn = ann_to_snn(&q, &t.train.take(64), &cfg).unwrap();
    let snn_clean = snn
        .accuracy(&t.test.inputs, &t.test.labels, 150, &mut snn_rng)
        .unwrap()
        * 100.0;

    let trials = 8;
    let variation = VariationModel::new(0.10);
    let mut ann_noisy_sum = 0.0;
    let mut snn_noisy_sum = 0.0;
    for trial in 0..trials {
        let mut rng = ChaCha8Rng::seed_from_u64(100 + trial);
        let mut noisy = q.clone();
        for layer in noisy.layers_mut() {
            if layer.is_weight_layer() {
                for p in layer.params_mut() {
                    variation.perturb_slice_f32(p.value.data_mut(), &mut rng);
                }
            }
        }
        ann_noisy_sum += noisy.accuracy(&t.test.inputs, &t.test.labels).unwrap() * 100.0;
        let mut snn_noisy = ann_to_snn(&noisy, &t.train.take(64), &cfg).unwrap();
        snn_noisy_sum += snn_noisy
            .accuracy(&t.test.inputs, &t.test.labels, 150, &mut rng)
            .unwrap()
            * 100.0;
    }
    let ann_noisy = ann_noisy_sum / trials as f64;
    let snn_noisy = snn_noisy_sum / trials as f64;
    print_table(
        "Sec. IV-D: Monte-Carlo 10% weight variation (16-level quantized VGG)",
        &["model", "clean %", "noisy % (mean)", "drop"],
        &[
            vec![
                "ANN".into(),
                pct(ann_clean),
                pct(ann_noisy),
                pct(ann_clean - ann_noisy),
            ],
            vec![
                "SNN@150".into(),
                pct(snn_clean),
                pct(snn_noisy),
                pct(snn_clean - snn_noisy),
            ],
        ],
    );
    println!("\nPaper: 0.74% (ANN) and 0.81% (SNN) accuracy drop - neuromorphic");
    println!("inference tolerates ~10% device mismatch with ~1% accuracy cost.");
}
