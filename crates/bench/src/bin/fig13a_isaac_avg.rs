//! Figure 13(a): average ISAAC energy normalized to NEBULA-ANN across
//! all ANN benchmarks.

use nebula_baselines::compare::isaac_vs_nebula_ann;
use nebula_baselines::isaac::IsaacConfig;
use nebula_bench::par::par_map;
use nebula_bench::table::{print_table, ratio};
use nebula_core::energy::EnergyModel;
use nebula_workloads::zoo;

fn main() {
    let model = EnergyModel::default();
    let cfg = IsaacConfig::adapted_4bit();
    let models = zoo::all_models();
    let rows = par_map(&models, |(name, ds)| {
        let (_, mean) = isaac_vs_nebula_ann(&cfg, &model, ds);
        vec![name.to_string(), ratio(mean)]
    });
    print_table(
        "Fig. 13(a): ISAAC / NEBULA-ANN average energy per benchmark",
        &["benchmark", "ISAAC/NEBULA"],
        &rows,
    );
    println!("\nPaper band: ~2.8x (AlexNet) up to ~7.9x (MobileNet); savings are");
    println!("highest for light-weight (small-R_f) convolution layers.");
}
