//! Table I: ANN-to-SNN conversion accuracy across the benchmark suite.
//!
//! Scaled topologies train on synthetic datasets (see `DESIGN.md` for the
//! substitution), convert via data-based threshold balancing, and are
//! evaluated at the per-benchmark timestep budget. The printed table
//! pairs our measured accuracies with the paper's reported values.
//!
//! Each workload owns its RNG (`ChaCha8Rng::seed_from_u64(7)`), so the
//! per-workload pipelines are independent and fan out across threads
//! with numbers identical to the sequential run.

use nebula_bench::par::par_map;
use nebula_bench::setup::{trained, Workload};
use nebula_bench::table::{pct, print_table};
use nebula_nn::convert::{ann_to_snn, ConversionConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let cases: [(Workload, u32, f64, f64); 6] = [
        (Workload::Mlp, 50, 96.81, 95.75),
        (Workload::Lenet, 40, 99.12, 98.56),
        (Workload::Vgg10, 150, 91.60, 90.05),
        (Workload::Mobilenet10, 200, 91.00, 81.08),
        (Workload::Vgg20, 200, 71.50, 68.32),
        (Workload::Svhn, 100, 94.96, 94.48),
    ];
    let results = par_map(&cases, |&(w, timesteps, _, _)| {
        let t = trained(w, 500, 20);
        let mut ann = t.net.clone();
        let ann_acc = ann.accuracy(&t.test.inputs, &t.test.labels).unwrap() * 100.0;
        let mut snn = ann_to_snn(&t.net, &t.train.take(64), &ConversionConfig::default()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        // A starved evidence window shows why the paper's timestep
        // budgets are needed: accuracy at T/20 trails the full window.
        let short_t = (timesteps as usize / 20).max(2);
        let snn_short = snn
            .accuracy(&t.test.inputs, &t.test.labels, short_t, &mut rng)
            .unwrap()
            * 100.0;
        let snn_acc = snn
            .accuracy(&t.test.inputs, &t.test.labels, timesteps as usize, &mut rng)
            .unwrap()
            * 100.0;
        (ann_acc, snn_short, snn_acc)
    });
    let mut rows = Vec::new();
    for ((w, timesteps, paper_ann, paper_snn), (ann_acc, snn_short, snn_acc)) in
        cases.iter().zip(results)
    {
        rows.push(vec![
            w.name().to_string(),
            timesteps.to_string(),
            pct(ann_acc),
            pct(snn_short),
            pct(snn_acc),
            pct(ann_acc - snn_acc),
            format!("{paper_ann:.2}/{paper_snn:.2}"),
        ]);
        println!(
            "{}: ANN {:.1}% -> SNN {:.1}% at T={}",
            w.name(),
            ann_acc,
            snn_acc,
            timesteps
        );
    }
    print_table(
        "Table I: ANN-to-SNN conversion accuracy (scaled models, synthetic data)",
        &[
            "network",
            "t-steps",
            "ANN %",
            "SNN@T/20 %",
            "SNN@T %",
            "gap",
            "paper ANN/SNN",
        ],
        &rows,
    );
    println!("\nShape check: converted SNNs approach their ANN accuracy, with the");
    println!("gap largest for the deepest model (MobileNet), as in the paper.");
}
