//! Performance sweep: sequential vs parallel wall-clock for the full
//! benchmark-suite evaluation and the VGG-13-scale tensor kernels.
//!
//! Writes `results/BENCH_sweep.json` (schema documented in
//! `EXPERIMENTS.md`) and prints a human-readable summary. Every parallel
//! leg is checked for exact equality with its sequential twin before the
//! timing is reported.

use std::time::Instant;

use nebula_core::energy::EnergyModel;
use nebula_core::engine::{evaluate_suite, par_evaluate_suite_with_workers, SuiteJob, SuiteMode};
use nebula_tensor::conv::{self, ConvGeometry};
use nebula_tensor::{par, Tensor};
use nebula_workloads::zoo;

/// Deterministic pseudo-random tensor (xorshift64*), with exact zeros so
/// the sparsity skip is exercised the way spike trains would.
fn noise_tensor(shape: &[usize], seed: u64) -> Tensor {
    let len: usize = shape.iter().product();
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let data: Vec<f32> = (0..len)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let bits = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            if bits.is_multiple_of(5) {
                0.0
            } else {
                ((bits >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
            }
        })
        .collect();
    Tensor::from_vec(data, shape).unwrap()
}

struct Leg {
    name: String,
    detail: String,
    sequential_ms: f64,
    parallel_ms: f64,
    identical: bool,
}

impl Leg {
    fn speedup(&self) -> f64 {
        self.sequential_ms / self.parallel_ms.max(1e-9)
    }
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

/// The full suite — every zoo model in ANN, SNN@300 and (where the
/// topology allows a split) Hyb-1@100 — repeated enough times to be
/// reliably measurable.
fn suite_leg(workers: usize) -> Leg {
    let model = EnergyModel::default();
    let base_jobs: Vec<SuiteJob> = zoo::all_models()
        .into_iter()
        .flat_map(|(name, ds)| {
            let mut jobs = vec![
                SuiteJob::new(name, ds.clone(), SuiteMode::Ann),
                SuiteJob::new(name, ds.clone(), SuiteMode::Snn { timesteps: 300 }),
            ];
            if ds.len() > 1 {
                jobs.push(SuiteJob::new(
                    name,
                    ds,
                    SuiteMode::Hybrid {
                        ann_layers: 1,
                        timesteps: 100,
                    },
                ));
            }
            jobs
        })
        .collect();
    // Calibrate repetitions so the sequential leg runs long enough to
    // dwarf thread-spawn overhead and timer noise.
    let t = Instant::now();
    let _ = evaluate_suite(&model, &base_jobs);
    let single_ms = ms(t).max(1e-3);
    let reps = ((1500.0 / single_ms).ceil() as usize).clamp(2, 2000);
    let jobs: Vec<SuiteJob> = (0..reps).flat_map(|_| base_jobs.iter().cloned()).collect();

    let t = Instant::now();
    let seq = evaluate_suite(&model, &jobs);
    let sequential_ms = ms(t);
    let t = Instant::now();
    let par = par_evaluate_suite_with_workers(&model, &jobs, workers);
    let parallel_ms = ms(t);
    Leg {
        name: "suite".into(),
        detail: format!(
            "{} models x modes = {} jobs/rep x {reps} reps",
            zoo::all_models().len(),
            base_jobs.len()
        ),
        sequential_ms,
        parallel_ms,
        identical: seq == par,
    }
}

fn matmul_leg(workers: usize) -> Leg {
    let a = noise_tensor(&[2048, 512], 1);
    let b = noise_tensor(&[512, 512], 2);
    let t = Instant::now();
    let seq = a.matmul(&b).unwrap();
    let sequential_ms = ms(t);
    let t = Instant::now();
    let par = par::matmul_with_workers(&a, &b, workers).unwrap();
    let parallel_ms = ms(t);
    Leg {
        name: "matmul".into(),
        detail: "[2048x512] . [512x512]".into(),
        sequential_ms,
        parallel_ms,
        identical: seq.data() == par.data(),
    }
}

fn conv2d_leg(workers: usize) -> Leg {
    // VGG-13 conv3 scale: 8 CIFAR images, 64->128 channels at 32x32.
    let x = noise_tensor(&[8, 64, 32, 32], 3);
    let w = noise_tensor(&[128, 64, 3, 3], 4);
    let bias = noise_tensor(&[128], 5);
    let geom = ConvGeometry::same(3);
    let t = Instant::now();
    let seq = conv::conv2d(&x, &w, Some(&bias), geom).unwrap();
    let sequential_ms = ms(t);
    let t = Instant::now();
    let par = par::conv2d_with_workers(&x, &w, Some(&bias), geom, workers).unwrap();
    let parallel_ms = ms(t);
    Leg {
        name: "conv2d".into(),
        detail: "[8x64x32x32] * [128x64x3x3] same-pad".into(),
        sequential_ms,
        parallel_ms,
        identical: seq.data() == par.data(),
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let workers = nebula_tensor::pool::size();
    let legs = [suite_leg(workers), matmul_leg(workers), conv2d_leg(workers)];

    let total_seq: f64 = legs.iter().map(|l| l.sequential_ms).sum();
    let total_par: f64 = legs.iter().map(|l| l.parallel_ms).sum();
    let all_identical = legs.iter().all(|l| l.identical);

    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"nebula-bench-sweep/1\",\n");
    json.push_str(&format!("  \"workers\": {workers},\n"));
    json.push_str("  \"legs\": [\n");
    for (i, l) in legs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"detail\": \"{}\", \"sequential_ms\": {:.3}, \"parallel_ms\": {:.3}, \"speedup\": {:.3}, \"identical\": {}}}{}\n",
            json_escape(&l.name),
            json_escape(&l.detail),
            l.sequential_ms,
            l.parallel_ms,
            l.speedup(),
            l.identical,
            if i + 1 < legs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"total\": {{\"sequential_ms\": {:.3}, \"parallel_ms\": {:.3}, \"speedup\": {:.3}, \"identical\": {}}}\n",
        total_seq,
        total_par,
        total_seq / total_par.max(1e-9),
        all_identical
    ));
    json.push_str("}\n");

    let path = if std::path::Path::new("results").is_dir() {
        "results/BENCH_sweep.json"
    } else {
        "BENCH_sweep.json"
    };
    std::fs::write(path, &json).expect("write BENCH_sweep.json");

    println!("BENCH sweep ({workers} workers), written to {path}\n");
    for l in &legs {
        println!(
            "  {:<8} {:<42} seq {:>9.1} ms   par {:>9.1} ms   {:>5.2}x   identical: {}",
            l.name,
            l.detail,
            l.sequential_ms,
            l.parallel_ms,
            l.speedup(),
            l.identical
        );
    }
    println!(
        "\n  total: seq {total_seq:.1} ms, par {total_par:.1} ms, speedup {:.2}x",
        total_seq / total_par.max(1e-9)
    );
    assert!(all_identical, "parallel results must match sequential");
}
