//! Table II: hybrid SNN-ANN model accuracy versus timesteps for the VGG
//! and SVHN workloads (Hyb-k keeps the last k weight layers non-spiking).
//!
//! Each workload owns its RNG (`ChaCha8Rng::seed_from_u64(11)`), so the
//! two workload pipelines run on separate threads with numbers identical
//! to the sequential run.

use nebula_bench::par::par_map;
use nebula_bench::setup::{trained, Workload};
use nebula_bench::table::{pct, print_table};
use nebula_nn::convert::{ann_to_snn, ConversionConfig};
use nebula_nn::HybridNetwork;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let cases = [(Workload::Vgg10, 150usize), (Workload::Svhn, 100)];
    let tables = par_map(&cases, |&(w, t_full)| {
        let t = trained(w, 500, 20);
        let cfg = ConversionConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut snn = ann_to_snn(&t.net, &t.train.take(64), &cfg).unwrap();
        let mut hybrids: Vec<(usize, HybridNetwork)> = [1usize, 2, 3]
            .iter()
            .map(|&k| {
                (
                    k,
                    HybridNetwork::split(&t.net, &t.train.take(64), k, &cfg).unwrap(),
                )
            })
            .collect();
        // Average a few Poisson draws so short windows are comparable.
        let reps = 4;
        let windows = [t_full, t_full / 5, t_full / 15, 4];
        let mut rows = Vec::new();
        for &steps in &windows {
            let mut snn_acc = 0.0;
            for _ in 0..reps {
                snn_acc += snn
                    .accuracy(&t.test.inputs, &t.test.labels, steps, &mut rng)
                    .unwrap();
            }
            let mut row = vec![steps.to_string(), pct(snn_acc / reps as f64 * 100.0)];
            for (_k, hyb) in hybrids.iter_mut() {
                let mut acc = 0.0;
                for _ in 0..reps {
                    acc += hyb
                        .accuracy(&t.test.inputs, &t.test.labels, steps, &mut rng)
                        .unwrap();
                }
                row.push(pct(acc / reps as f64 * 100.0));
            }
            rows.push(row);
        }
        rows
    });
    for ((w, _), rows) in cases.iter().zip(tables) {
        print_table(
            &format!(
                "Table II ({}): accuracy vs timesteps, SNN and Hyb-k",
                w.name()
            ),
            &["t-steps", "SNN %", "Hyb-1 %", "Hyb-2 %", "Hyb-3 %"],
            &rows,
        );
    }
    println!("\nShape check: at starved evidence windows (small T) the hybrid");
    println!("models retain accuracy the pure SNN loses - the paper's Table II /");
    println!("Fig. 17 motivation for hybrid SNN-ANN inference.");
}
