//! Figure 4: layer-wise average neuron spiking activity — spikes per
//! neuron per timestep decrease with depth.

use nebula_bench::setup::{trained, Workload};
use nebula_bench::table::print_table;
use nebula_nn::convert::{ann_to_snn, ConversionConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    for w in [Workload::Vgg10, Workload::Lenet, Workload::Mobilenet10] {
        let t = trained(w, 400, 15);
        let mut snn = ann_to_snn(&t.net, &t.train.take(64), &ConversionConfig::default()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let result = snn.run(&t.test.take(60).inputs, 100, &mut rng).unwrap();
        let rows: Vec<Vec<String>> = result
            .stats
            .activity_per_layer
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let bar = "#".repeat((a * 120.0).round() as usize);
                vec![format!("IF layer {i}"), format!("{a:.4}"), bar]
            })
            .collect();
        print_table(
            &format!(
                "Fig. 4 ({}): average spikes/neuron/timestep by layer",
                w.name()
            ),
            &["layer", "activity", ""],
            &rows,
        );
    }
    println!("\nShape check: spiking activity decays with depth, implying lower");
    println!("dynamic power in deeper layers on event-driven hardware.");
}
