//! Figure 1(b): DW-MTJ device characteristics — domain-wall displacement
//! and conductance change versus programming current magnitude.

use nebula_bench::table::print_table;
use nebula_device::params::DeviceParams;
use nebula_device::synapse::transfer_characteristic;

fn main() {
    let params = DeviceParams::default();
    let curve = transfer_characteristic(&params, params.full_scale_current() * 1.2, 13);
    let rows: Vec<Vec<String>> = curve
        .iter()
        .map(|p| {
            vec![
                format!("{:.1}", p.current.0 * 1e6),
                format!("{:.1}", p.displacement.as_nm()),
                format!("{:.3}", p.conductance_change.0 * 1e6),
            ]
        })
        .collect();
    print_table(
        "Fig. 1(b): DW-MTJ transfer characteristic (linear above I_c)",
        &["I_prog (uA)", "DW displacement (nm)", "dG (uS)"],
        &rows,
    );
    println!(
        "\nDevice: {} nm free layer, {} nm pinning pitch, {} states, I_c = {:.1} uA",
        params.free_layer_length().as_nm(),
        params.pinning_resolution().as_nm(),
        params.levels(),
        params.critical_current().0 * 1e6
    );
    println!("Paper shape: displacement (and hence conductance change) is");
    println!("proportional to programming-current magnitude above threshold.");
}
