//! Multi-chip scaling: throughput, capacity, inter-chip NoC energy and
//! — new in schema /2 — **measured wall-clock pipeline speedup** across
//! cluster sizes N ∈ {1, 2, 4, 8}.
//!
//! Four studies per run:
//!
//! * **Plan** — VGG/13 in SNN mode planned layer-pipelined onto each
//!   cluster size ([`plan_cluster`]): stages used, bottleneck cycles
//!   and the analytic throughput speedup at batch depths {1, 8, 64}.
//!   The partitioner may use fewer chips than offered once one stage
//!   dominates — the honest saturation point is part of the result.
//! * **Execution** — a wide 9-segment MLP (ANN and SNN) actually runs
//!   on every cluster size under both strategies, through the same
//!   circuit-level executors the single-chip engine uses. Every leg
//!   runs **three** times: single-chip, sequential sharded, and the
//!   concurrent pipeline executor
//!   ([`ShardedAnalogNetwork::forward_pipelined`] /
//!   [`ShardedSpikingNetwork::run_pipelined`]). All three must agree
//!   bitwise on outputs and wave counts, the two sharded twins must
//!   report identical cluster traffic, and read energy must match the
//!   single chip to ≤1e-9 relative. `measured_speedup` is sequential
//!   sharded over pipelined wall time; `modeled_speedup` is the PR 9
//!   analytic plan at the same item count, and `speedup_ratio` their
//!   agreement.
//! * **Scaled VGG/13 SNN** — a channels/8 VGG-13 on 16×16 inputs,
//!   sharded with the cost-aware
//!   [`ShardedSpikingNetwork::layer_pipelined_for_input`] splitter, is
//!   the headline measured-speedup leg: on a multi-core runner
//!   (`NEBULA_THREADS ≥ 4` with ≥ 4 hardware threads) the 4-chip
//!   pipelined run must beat sequential sharded by ≥ 1.5×. On a
//!   single-CPU host the leg still runs, still checks bitwise
//!   identity, and records the honest ≈1× number.
//! * **Over-capacity** — a 16384-wide dense layer needs 16 ANN cores,
//!   two more than one chip's pool: [`fits_chip`] rejects it with a
//!   typed [`CapacityExceeded`], the tensor-sharded executor runs it
//!   on 4 chips (sequentially *and* pipelined), and the output still
//!   matches the (hypothetical) single-chip computation bit for bit.
//!   Sharding buys capacity, the pipeline buys throughput.
//!
//! Writes `results/BENCH_multichip.json` (schema
//! `nebula-bench-multichip/2`, documented in `EXPERIMENTS.md`).
//! `NEBULA_MULTICHIP_SAMPLES` overrides the batch rows (CI smoke runs
//! 2); `NEBULA_MULTICHIP_DEPTH` overrides the ANN micro-batch depth;
//! `NEBULA_THREADS` sizes the worker pool the pipeline claimants ride.
//! The binary aborts on any divergence.

use std::time::Instant;

use nebula_core::analog::{compile_ann, AnalogNetwork};
use nebula_core::analog_snn::{compile_snn_default, AnalogSpikingNetwork};
use nebula_core::capacity::fits_chip;
use nebula_core::chip::ChipConfig;
use nebula_core::energy::{EnergyModel, ExecMode};
use nebula_core::multichip::{
    plan_cluster, ClusterConfig, PipelineConfig, ShardStrategy, ShardedAnalogNetwork,
    ShardedSpikingNetwork,
};
use nebula_nn::layer::Layer;
use nebula_nn::network::Network;
use nebula_nn::snn::{IfPopulation, InputEncoding, ResetMode, SnnStage, SpikingNetwork};
use nebula_nn::stats::LayerDescriptor;
use nebula_noc::TrafficStats;
use nebula_tensor::Tensor;
use nebula_workloads::zoo;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Accumulated per-row-sum energy tolerance vs the reference.
const ENERGY_RTOL: f64 = 1e-9;

/// Cluster sizes swept in the plan and wide-MLP execution studies.
const CHIPS: [usize; 4] = [1, 2, 4, 8];

/// Cluster sizes for the scaled VGG/13 measured leg.
const VGG_CHIPS: [usize; 3] = [1, 2, 4];

/// Batch depths the analytic pipeline speedup is quoted at.
const PLAN_DEPTHS: [u64; 3] = [1, 8, 64];

/// The headline plan depth (kept from schema /1).
const PLAN_BATCHES: u64 = 64;

/// SNN timesteps for the wide-MLP execution legs.
const TIMESTEPS: usize = 12;

/// SNN timesteps for the scaled VGG/13 leg — also its pipeline item
/// count, so it sets how far the fill latency is amortised.
const VGG_TIMESTEPS: usize = 16;

/// Segments in the wide execution MLP's first layer (2048 rows each).
const WIDE_SEGMENTS: usize = 9;

fn sample_count() -> usize {
    std::env::var("NEBULA_MULTICHIP_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(4)
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

fn bits_equal(a: &Tensor, b: &Tensor) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn rel_err(value: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        if value == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        ((value - reference) / reference).abs()
    }
}

/// The wide execution MLP: first layer spans [`WIDE_SEGMENTS`] crossbar
/// segments, so tensor sharding splits real state on every cluster
/// size in the sweep.
fn wide_input() -> usize {
    WIDE_SEGMENTS * 2048 - 1835 // 16597 → 9 segments, last one ragged
}

fn wide_ann(seed: u64) -> AnalogNetwork {
    let mut r = ChaCha8Rng::seed_from_u64(seed);
    let net = Network::new(vec![
        Layer::dense(wide_input(), 48, &mut r),
        Layer::relu(),
        Layer::dense(48, 10, &mut r),
    ]);
    compile_ann(&net).unwrap()
}

fn wide_snn(seed: u64) -> AnalogSpikingNetwork {
    let mut r = ChaCha8Rng::seed_from_u64(seed);
    let snn = SpikingNetwork::new(
        vec![
            SnnStage::Synaptic(Layer::dense(wide_input(), 48, &mut r)),
            SnnStage::IntegrateFire(IfPopulation::new(0.7, ResetMode::Subtract)),
            SnnStage::Synaptic(Layer::dense(48, 10, &mut r)),
            SnnStage::IntegrateFire(IfPopulation::new(0.7, ResetMode::Zero)),
        ],
        InputEncoding::Poisson,
    );
    compile_snn_default(&snn).unwrap()
}

/// Plan-study descriptors for the wide MLP, so each execution leg can
/// quote the analytic speedup the measured number is judged against.
fn wide_descriptors() -> Vec<LayerDescriptor> {
    vec![
        LayerDescriptor::dense(0, "fc0", wide_input(), 48),
        LayerDescriptor::dense(1, "fc1", 48, 10),
    ]
}

/// Channel pairs of the five VGG-13 conv blocks at 1/8 width.
const VGG_BLOCKS: [[(usize, usize); 2]; 5] = [
    [(3, 8), (8, 8)],
    [(8, 16), (16, 16)],
    [(16, 32), (32, 32)],
    [(32, 64), (64, 64)],
    [(64, 64), (64, 64)],
];

/// Scaled VGG-13 SNN for 16×16 RGB inputs: ten 3×3 convs in five
/// blocks at 1/8 the paper's channel widths, average pools between the
/// first four blocks (the fifth runs at 1×1, where VGG's final pool
/// has nothing left to shrink), then flatten and two dense layers.
/// Every synaptic stage — pools included, matching the converter's
/// placement — is followed by an integrate-and-fire population.
fn scaled_vgg13_snn(classes: usize, seed: u64) -> AnalogSpikingNetwork {
    let mut r = ChaCha8Rng::seed_from_u64(seed);
    let mut stages = Vec::new();
    for (block, pair) in VGG_BLOCKS.iter().enumerate() {
        for &(in_c, out_c) in pair {
            stages.push(SnnStage::Synaptic(Layer::conv2d(
                in_c, out_c, 3, 1, 1, &mut r,
            )));
            stages.push(SnnStage::IntegrateFire(IfPopulation::new(
                0.7,
                ResetMode::Subtract,
            )));
        }
        if block < 4 {
            stages.push(SnnStage::Synaptic(Layer::avg_pool(2)));
            stages.push(SnnStage::IntegrateFire(IfPopulation::new(
                0.7,
                ResetMode::Subtract,
            )));
        }
    }
    stages.push(SnnStage::Synaptic(Layer::flatten()));
    stages.push(SnnStage::Synaptic(Layer::dense(64, 64, &mut r)));
    stages.push(SnnStage::IntegrateFire(IfPopulation::new(
        0.7,
        ResetMode::Subtract,
    )));
    stages.push(SnnStage::Synaptic(Layer::dense(64, classes, &mut r)));
    stages.push(SnnStage::IntegrateFire(IfPopulation::new(
        0.7,
        ResetMode::Zero,
    )));
    compile_snn_default(&SpikingNetwork::new(stages, InputEncoding::Poisson)).unwrap()
}

/// Plan-study descriptors matching [`scaled_vgg13_snn`] geometry.
fn scaled_vgg13_descriptors(classes: usize) -> Vec<LayerDescriptor> {
    let mut d = Vec::new();
    let mut hw = 16usize;
    for (block, pair) in VGG_BLOCKS.iter().enumerate() {
        for (j, &(in_c, out_c)) in pair.iter().enumerate() {
            let name = format!("conv{}_{}", block + 1, j + 1);
            d.push(LayerDescriptor::conv(
                d.len(),
                name,
                in_c,
                out_c,
                3,
                1,
                1,
                (hw, hw),
            ));
        }
        if block < 4 {
            hw /= 2;
        }
    }
    d.push(LayerDescriptor::dense(d.len(), "fc1", 64, 64));
    d.push(LayerDescriptor::dense(d.len(), "fc2", 64, classes));
    d
}

struct PlanPoint {
    chips: usize,
    stages: usize,
    bottleneck_cycles: u64,
    single_pass_cycles: u64,
    speedup: f64,
    speedup_at_depth: [f64; PLAN_DEPTHS.len()],
    max_chip_cores: usize,
}

struct ExecPoint {
    model: &'static str,
    mode: &'static str,
    strategy: &'static str,
    chips: usize,
    single_ms: f64,
    sharded_ms: f64,
    pipelined_ms: f64,
    modeled_speedup: f64,
    measured_speedup: f64,
    speedup_ratio: f64,
    read_energy_j: f64,
    noc_energy_j: f64,
    noc_energy_share: f64,
    link_flit_hops: u64,
    identical: bool,
    energy_rel_err: f64,
}

/// Folds the three runs of one leg into an [`ExecPoint`], enforcing
/// the identity contract: both sharded twins bitwise-match the
/// single-chip outputs and waves, report the *same* cluster traffic
/// (all [`TrafficStats`] fields, link flit-hops included), and land
/// within [`ENERGY_RTOL`] of the single-chip read energy.
#[allow(clippy::too_many_arguments)]
fn finish_point(
    model: &'static str,
    mode: &'static str,
    strategy: &'static str,
    chips: usize,
    times: (f64, f64, f64),
    modeled_speedup: f64,
    outputs: (&Tensor, &Tensor, &Tensor),
    energies: (f64, f64, f64),
    waves_ok: bool,
    traffic_seq: TrafficStats,
    traffic_pipe: TrafficStats,
    energy_model: &EnergyModel,
) -> ExecPoint {
    let (single_ms, sharded_ms, pipelined_ms) = times;
    let (want, got_seq, got_pipe) = outputs;
    let (e_single, e_seq, e_pipe) = energies;
    let energy_rel_err = rel_err(e_seq, e_single).max(rel_err(e_pipe, e_single));
    let identical = bits_equal(want, got_seq)
        && bits_equal(want, got_pipe)
        && waves_ok
        && traffic_seq == traffic_pipe
        && energy_rel_err <= ENERGY_RTOL;
    let noc_energy_j = energy_model.noc_traffic_energy(&traffic_seq).0;
    let measured_speedup = sharded_ms / pipelined_ms.max(1e-9);
    let speedup_ratio = if modeled_speedup.is_finite() && modeled_speedup > 0.0 {
        measured_speedup / modeled_speedup
    } else {
        f64::NAN
    };
    ExecPoint {
        model,
        mode,
        strategy,
        chips,
        single_ms,
        sharded_ms,
        pipelined_ms,
        modeled_speedup,
        measured_speedup,
        speedup_ratio,
        read_energy_j: e_seq,
        noc_energy_j,
        noc_energy_share: noc_energy_j / (noc_energy_j + e_seq).max(1e-300),
        link_flit_hops: traffic_seq.link_flit_hops,
        identical,
        energy_rel_err,
    }
}

#[allow(clippy::too_many_arguments)]
fn run_ann_point(
    model: &'static str,
    strategy: ShardStrategy,
    chips: usize,
    ann: &AnalogNetwork,
    x: &Tensor,
    cfg: &PipelineConfig,
    modeled_speedup: f64,
    energy_model: &EnergyModel,
) -> ExecPoint {
    let mut single = ann.clone();
    let tm = Instant::now();
    let want = single.forward(x).unwrap();
    let single_ms = ms(tm);

    let mut seq = ShardedAnalogNetwork::new(ann.clone(), chips, strategy).unwrap();
    let tm = Instant::now();
    let got_seq = seq.forward(x).unwrap();
    let sharded_ms = ms(tm);

    let mut pipe = ShardedAnalogNetwork::new(ann.clone(), chips, strategy).unwrap();
    let tm = Instant::now();
    let got_pipe = pipe.forward_pipelined(x, cfg).unwrap();
    let pipelined_ms = ms(tm);

    let waves_ok = single.waves() == seq.waves() && seq.waves() == pipe.waves();
    finish_point(
        model,
        "ann",
        strategy.name(),
        chips,
        (single_ms, sharded_ms, pipelined_ms),
        modeled_speedup,
        (&want, &got_seq, &got_pipe),
        (
            single.read_energy().0,
            seq.read_energy().0,
            pipe.read_energy().0,
        ),
        waves_ok,
        seq.traffic(),
        pipe.traffic(),
        energy_model,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_snn_point(
    model: &'static str,
    strategy: &'static str,
    chips: usize,
    snn: &AnalogSpikingNetwork,
    build: &dyn Fn(AnalogSpikingNetwork, usize) -> ShardedSpikingNetwork,
    x: &Tensor,
    timesteps: usize,
    cfg: &PipelineConfig,
    modeled_speedup: f64,
    energy_model: &EnergyModel,
) -> ExecPoint {
    let mut single = snn.clone();
    let mut r1 = ChaCha8Rng::seed_from_u64(7);
    let tm = Instant::now();
    let want = single.run(x, timesteps, &mut r1).unwrap();
    let single_ms = ms(tm);

    let mut seq = build(snn.clone(), chips);
    let mut r2 = ChaCha8Rng::seed_from_u64(7);
    let tm = Instant::now();
    let got_seq = seq.run(x, timesteps, &mut r2).unwrap();
    let sharded_ms = ms(tm);

    let mut pipe = build(snn.clone(), chips);
    let mut r3 = ChaCha8Rng::seed_from_u64(7);
    let tm = Instant::now();
    let got_pipe = pipe.run_pipelined(x, timesteps, &mut r3, cfg).unwrap();
    let pipelined_ms = ms(tm);

    let waves_ok = single.waves() == seq.waves() && seq.waves() == pipe.waves();
    finish_point(
        model,
        "snn",
        strategy,
        chips,
        (single_ms, sharded_ms, pipelined_ms),
        modeled_speedup,
        (&want, &got_seq, &got_pipe),
        (
            single.read_energy().0,
            seq.read_energy().0,
            pipe.read_energy().0,
        ),
        waves_ok,
        seq.traffic(),
        pipe.traffic(),
        energy_model,
    )
}

fn modeled_speedup_for(
    descriptors: &[LayerDescriptor],
    chips: usize,
    strategy: ShardStrategy,
    mode: ExecMode,
    items: u64,
) -> f64 {
    plan_cluster(descriptors, &ClusterConfig::new(chips, strategy), mode)
        .map(|p| p.speedup(items))
        .unwrap_or(f64::NAN)
}

fn main() {
    let samples = sample_count();
    let workers = nebula_tensor::pool::size();
    let hw_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let cfg = PipelineConfig::from_env();
    let energy_model = EnergyModel::default();

    // --- Plan study: VGG/13 SNN layer-pipelined across cluster sizes --
    let vgg = zoo::vgg13(10);
    let mut plan_points = Vec::new();
    for &chips in &CHIPS {
        let plan = plan_cluster(
            &vgg,
            &ClusterConfig::new(chips, ShardStrategy::LayerPipelined),
            ExecMode::Snn { timesteps: 1 },
        )
        .unwrap();
        let mut speedup_at_depth = [0.0; PLAN_DEPTHS.len()];
        for (slot, &depth) in speedup_at_depth.iter_mut().zip(&PLAN_DEPTHS) {
            *slot = plan.speedup(depth);
        }
        plan_points.push(PlanPoint {
            chips,
            stages: plan.stage_count,
            bottleneck_cycles: plan.bottleneck_cycles,
            single_pass_cycles: plan.single_pass_cycles,
            speedup: plan.speedup(PLAN_BATCHES),
            speedup_at_depth,
            max_chip_cores: plan.per_chip_cores.iter().copied().max().unwrap_or(0),
        });
    }

    // --- Execution study: wide MLP, both modes × strategies × N -------
    let ann = wide_ann(2026);
    let snn = wide_snn(2027);
    let mut r = ChaCha8Rng::seed_from_u64(99);
    let x = Tensor::rand_uniform(&[samples, wide_input()], 0.0, 1.0, &mut r);
    let wide_desc = wide_descriptors();
    let ann_items = samples.div_ceil(cfg.micro_batch.max(1)) as u64;
    let mut exec_points = Vec::new();
    for strategy in [ShardStrategy::LayerPipelined, ShardStrategy::TensorSharded] {
        for &chips in &CHIPS {
            let modeled =
                modeled_speedup_for(&wide_desc, chips, strategy, ExecMode::Ann, ann_items);
            exec_points.push(run_ann_point(
                "wide_mlp",
                strategy,
                chips,
                &ann,
                &x,
                &cfg,
                modeled,
                &energy_model,
            ));
        }
    }
    for strategy in [ShardStrategy::LayerPipelined, ShardStrategy::TensorSharded] {
        for &chips in &CHIPS {
            let modeled = modeled_speedup_for(
                &wide_desc,
                chips,
                strategy,
                ExecMode::Snn {
                    timesteps: TIMESTEPS as u32,
                },
                TIMESTEPS as u64,
            );
            exec_points.push(run_snn_point(
                "wide_mlp",
                strategy.name(),
                chips,
                &snn,
                &|net, c| ShardedSpikingNetwork::new(net, c, strategy).unwrap(),
                &x,
                TIMESTEPS,
                &cfg,
                modeled,
                &energy_model,
            ));
        }
    }

    // --- Scaled VGG/13 SNN: the measured-speedup headline leg ---------
    let vgg_snn = scaled_vgg13_snn(10, 4242);
    let vgg_desc = scaled_vgg13_descriptors(10);
    let mut r_vgg = ChaCha8Rng::seed_from_u64(424);
    let x_vgg = Tensor::rand_uniform(&[samples, 3, 16, 16], 0.0, 1.0, &mut r_vgg);
    for &chips in &VGG_CHIPS {
        let modeled = modeled_speedup_for(
            &vgg_desc,
            chips,
            ShardStrategy::LayerPipelined,
            ExecMode::Snn {
                timesteps: VGG_TIMESTEPS as u32,
            },
            VGG_TIMESTEPS as u64,
        );
        let shape = x_vgg.shape().to_vec();
        exec_points.push(run_snn_point(
            "scaled_vgg13",
            ShardStrategy::LayerPipelined.name(),
            chips,
            &vgg_snn,
            &move |net, c| {
                ShardedSpikingNetwork::layer_pipelined_for_input(net, c, &shape).unwrap()
            },
            &x_vgg,
            VGG_TIMESTEPS,
            &cfg,
            modeled,
            &energy_model,
        ));
    }

    // --- Over-capacity study ------------------------------------------
    // 16384×256 dense: 16 ANN cores > the 14-core pool. One chip rejects
    // it with a typed error; 4 tensor-sharded chips run it — both
    // sequentially and through the pipeline executor.
    let oc_desc = vec![LayerDescriptor::dense(0, "wide_fc", 16384, 256)];
    let oc_err = fits_chip(&oc_desc, &ChipConfig::default(), ExecMode::Ann)
        .expect_err("wide_fc must overflow one chip's ANN pool");
    let oc_plan = plan_cluster(
        &oc_desc,
        &ClusterConfig::new(4, ShardStrategy::TensorSharded),
        ExecMode::Ann,
    )
    .unwrap();
    let mut r_oc = ChaCha8Rng::seed_from_u64(5150);
    let oc_net = compile_ann(&Network::new(vec![Layer::dense(16384, 256, &mut r_oc)])).unwrap();
    let x_oc = Tensor::rand_uniform(&[2, 16384], 0.0, 1.0, &mut r_oc);
    let oc_want = oc_net.clone().forward(&x_oc).unwrap();
    let mut oc_sharded =
        ShardedAnalogNetwork::new(oc_net.clone(), 4, ShardStrategy::TensorSharded).unwrap();
    let oc_got = oc_sharded.forward(&x_oc).unwrap();
    let mut oc_pipe = ShardedAnalogNetwork::new(oc_net, 4, ShardStrategy::TensorSharded).unwrap();
    let oc_got_pipe = oc_pipe.forward_pipelined(&x_oc, &cfg).unwrap();
    let oc_identical = bits_equal(&oc_want, &oc_got);
    let oc_pipelined_identical =
        bits_equal(&oc_want, &oc_got_pipe) && oc_sharded.traffic() == oc_pipe.traffic();
    let oc_max_chip_cores = oc_plan.per_chip_cores.iter().copied().max().unwrap_or(0);

    // --- JSON ----------------------------------------------------------
    let all_identical =
        exec_points.iter().all(|p| p.identical) && oc_identical && oc_pipelined_identical;
    let max_energy_err = exec_points
        .iter()
        .map(|p| p.energy_rel_err)
        .fold(0.0, f64::max);
    let speedup_at_4 = plan_points
        .iter()
        .find(|p| p.chips == 4)
        .map(|p| p.speedup)
        .unwrap_or(f64::NAN);
    let vgg_at_4 = exec_points
        .iter()
        .find(|p| p.model == "scaled_vgg13" && p.chips == 4)
        .expect("VGG/13 leg at 4 chips");
    let measured_at_4 = vgg_at_4.measured_speedup;
    let modeled_at_4 = vgg_at_4.modeled_speedup;
    // The measured wall-clock gate only arms where overlap is physically
    // possible: ≥4 pool workers on ≥4 hardware threads. A 1-CPU host
    // still runs the leg and records its honest ≈1× number.
    let gate_armed = workers >= 4 && hw_threads >= 4;

    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"nebula-bench-multichip/2\",\n");
    json.push_str(&format!("  \"samples\": {samples},\n"));
    json.push_str(&format!("  \"workers\": {workers},\n"));
    json.push_str(&format!("  \"hw_threads\": {hw_threads},\n"));
    json.push_str(&format!("  \"micro_batch\": {},\n", cfg.micro_batch));
    json.push_str(&format!("  \"queue_capacity\": {},\n", cfg.queue_capacity));
    json.push_str(&format!("  \"plan_batches\": {PLAN_BATCHES},\n"));
    json.push_str("  \"plan\": [\n");
    for (i, p) in plan_points.iter().enumerate() {
        let depths: Vec<String> = PLAN_DEPTHS
            .iter()
            .zip(&p.speedup_at_depth)
            .map(|(d, s)| format!("\"{d}\": {s:.4}"))
            .collect();
        json.push_str(&format!(
            "    {{\"model\": \"vgg13\", \"mode\": \"snn\", \"strategy\": \"layer_pipelined\", \"chips\": {}, \"stages\": {}, \"bottleneck_cycles\": {}, \"single_pass_cycles\": {}, \"speedup\": {:.4}, \"speedup_at_depth\": {{{}}}, \"max_chip_cores\": {}}}{}\n",
            p.chips,
            p.stages,
            p.bottleneck_cycles,
            p.single_pass_cycles,
            p.speedup,
            depths.join(", "),
            p.max_chip_cores,
            if i + 1 < plan_points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"execution\": [\n");
    for (i, p) in exec_points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"model\": \"{}\", \"mode\": \"{}\", \"strategy\": \"{}\", \"chips\": {}, \"single_ms\": {:.3}, \"sharded_ms\": {:.3}, \"pipelined_ms\": {:.3}, \"modeled_speedup\": {:.4}, \"measured_speedup\": {:.4}, \"speedup_ratio\": {:.4}, \"read_energy_j\": {:.6e}, \"noc_energy_j\": {:.6e}, \"noc_energy_share\": {:.6}, \"link_flit_hops\": {}, \"identical\": {}, \"energy_rel_err\": {:.3e}}}{}\n",
            p.model,
            p.mode,
            p.strategy,
            p.chips,
            p.single_ms,
            p.sharded_ms,
            p.pipelined_ms,
            p.modeled_speedup,
            p.measured_speedup,
            p.speedup_ratio,
            p.read_energy_j,
            p.noc_energy_j,
            p.noc_energy_share,
            p.link_flit_hops,
            p.identical,
            p.energy_rel_err,
            if i + 1 < exec_points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"over_capacity\": {{\"model\": \"wide_fc 16384x256\", \"mode\": \"ann\", \"unsharded_error\": \"{}\", \"demanded\": {}, \"available\": {}, \"sharded_chips\": 4, \"max_chip_cores\": {}, \"ran_sharded\": true, \"identical\": {}, \"pipelined_identical\": {}}},\n",
        oc_err.to_string().replace('"', "\\\""),
        oc_err.demanded,
        oc_err.available,
        oc_max_chip_cores,
        oc_identical,
        oc_pipelined_identical
    ));
    json.push_str(&format!(
        "  \"summary\": {{\"identical\": {}, \"max_energy_rel_err\": {:.3e}, \"pipeline_speedup_at_4_chips\": {:.4}, \"measured_speedup_at_4_chips\": {:.4}, \"modeled_speedup_at_4_chips\": {:.4}, \"wall_clock_gate_armed\": {}}}\n",
        all_identical, max_energy_err, speedup_at_4, measured_at_4, modeled_at_4, gate_armed
    ));
    json.push_str("}\n");

    let path = if std::path::Path::new("results").is_dir() {
        "results/BENCH_multichip.json"
    } else {
        "BENCH_multichip.json"
    };
    std::fs::write(path, &json).expect("write BENCH_multichip.json");

    println!("BENCH multichip ({samples} samples, {workers} workers, {hw_threads} hw threads), written to {path}\n");
    println!("  plan: VGG/13 SNN layer-pipelined, speedup at depths {PLAN_DEPTHS:?}");
    for p in &plan_points {
        println!(
            "    chips {:>2}  stages {:>2}  bottleneck {:>12} cyc  speedup {:>6.3} | {:>6.3} | {:>6.3}  max cores/chip {:>3}",
            p.chips,
            p.stages,
            p.bottleneck_cycles,
            p.speedup_at_depth[0],
            p.speedup_at_depth[1],
            p.speedup_at_depth[2],
            p.max_chip_cores
        );
    }
    println!(
        "\n  execution: {samples} samples, micro-batch {}",
        cfg.micro_batch
    );
    for p in &exec_points {
        println!(
            "    {:<12} {:>3} {:<15} chips {:>2}  seq {:>8.1} ms  pipe {:>8.1} ms  measured {:>5.2}x  modeled {:>5.2}x  identical: {}",
            p.model,
            p.mode,
            p.strategy,
            p.chips,
            p.sharded_ms,
            p.pipelined_ms,
            p.measured_speedup,
            p.modeled_speedup,
            p.identical,
        );
    }
    println!(
        "\n  over-capacity: wide_fc demanded {} > {} available → \"{}\"; ran tensor-sharded on 4 chips (max {}/chip), identical: {} (pipelined: {})",
        oc_err.demanded,
        oc_err.available,
        oc_err,
        oc_max_chip_cores,
        oc_identical,
        oc_pipelined_identical
    );
    println!(
        "\n  VGG/13 SNN at 4 chips: measured {measured_at_4:.2}x vs modeled {modeled_at_4:.2}x (wall-clock gate {})",
        if gate_armed { "armed" } else { "disarmed: needs ≥4 workers on ≥4 hw threads" }
    );

    assert!(all_identical, "sharded execution diverged from single-chip");
    assert!(
        max_energy_err <= ENERGY_RTOL,
        "sharded energy deviated {max_energy_err:.3e} > {ENERGY_RTOL:.0e} relative"
    );
    assert!(
        speedup_at_4 > 1.5,
        "4-chip modeled pipeline speedup {speedup_at_4:.3} ≤ 1.5 at depth {PLAN_BATCHES}"
    );
    if gate_armed {
        assert!(
            measured_at_4 >= 1.5,
            "4-chip measured pipeline speedup {measured_at_4:.3} < 1.5 on VGG/13 SNN with {workers} workers"
        );
    }
    let remote_traffic = exec_points
        .iter()
        .any(|p| p.chips > 1 && p.link_flit_hops > 0);
    assert!(remote_traffic, "no leg ever crossed a chip-to-chip link");
    assert!(
        oc_err.demanded > oc_err.available,
        "over-capacity model unexpectedly fits one chip"
    );
}
