//! Multi-chip scaling: throughput, capacity and inter-chip NoC energy
//! across cluster sizes N ∈ {1, 2, 4, 8}.
//!
//! Three studies per run:
//!
//! * **Plan** — VGG/13 in SNN mode planned layer-pipelined onto each
//!   cluster size ([`plan_cluster`]): stages used, bottleneck cycles
//!   and the analytic throughput speedup at batch depth 64. The
//!   partitioner may use fewer chips than offered once one stage
//!   dominates — the honest saturation point is part of the result.
//! * **Execution** — a wide 9-segment MLP (ANN and SNN) actually runs
//!   on every cluster size under both strategies, through the same
//!   circuit-level executors the single-chip engine uses. Outputs,
//!   wave counts and (scalar-path) read energy must be **bitwise
//!   identical** to the single-chip run; the cluster's measured mesh +
//!   ring traffic prices the inter-chip overhead
//!   ([`EnergyModel::noc_traffic_energy`]) and `noc_energy_share`
//!   reports it as a fraction of total (read + transport) energy.
//! * **Over-capacity** — a 16384-wide dense layer needs 16 ANN cores,
//!   two more than one chip's pool: [`fits_chip`] rejects it with a
//!   typed [`CapacityExceeded`], the tensor-sharded executor runs it
//!   on 4 chips, and the output still matches the (hypothetical)
//!   single-chip computation bit for bit. Sharding buys capacity, the
//!   pipeline buys throughput.
//!
//! Writes `results/BENCH_multichip.json` (schema
//! `nebula-bench-multichip/1`, documented in `EXPERIMENTS.md`).
//! `NEBULA_MULTICHIP_SAMPLES` overrides the batch rows (CI smoke
//! runs 2). The binary aborts on any divergence.

use std::time::Instant;

use nebula_core::analog::{compile_ann, AnalogNetwork};
use nebula_core::analog_snn::{compile_snn_default, AnalogSpikingNetwork};
use nebula_core::capacity::fits_chip;
use nebula_core::chip::ChipConfig;
use nebula_core::energy::{EnergyModel, ExecMode};
use nebula_core::multichip::{
    plan_cluster, ClusterConfig, ShardStrategy, ShardedAnalogNetwork, ShardedSpikingNetwork,
};
use nebula_nn::layer::Layer;
use nebula_nn::network::Network;
use nebula_nn::snn::{IfPopulation, InputEncoding, ResetMode, SnnStage, SpikingNetwork};
use nebula_nn::stats::LayerDescriptor;
use nebula_tensor::Tensor;
use nebula_workloads::zoo;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Accumulated per-row-sum energy tolerance vs the reference.
const ENERGY_RTOL: f64 = 1e-9;

/// Cluster sizes swept everywhere.
const CHIPS: [usize; 4] = [1, 2, 4, 8];

/// Batch depth the analytic pipeline speedup is quoted at.
const PLAN_BATCHES: u64 = 64;

/// SNN timesteps for the execution legs.
const TIMESTEPS: usize = 12;

/// Segments in the wide execution MLP's first layer (2048 rows each).
const WIDE_SEGMENTS: usize = 9;

fn sample_count() -> usize {
    std::env::var("NEBULA_MULTICHIP_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(4)
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

fn bits_equal(a: &Tensor, b: &Tensor) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn rel_err(value: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        if value == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        ((value - reference) / reference).abs()
    }
}

/// The wide execution MLP: first layer spans [`WIDE_SEGMENTS`] crossbar
/// segments, so tensor sharding splits real state on every cluster
/// size in the sweep.
fn wide_input() -> usize {
    WIDE_SEGMENTS * 2048 - 1835 // 16597 → 9 segments, last one ragged
}

fn wide_ann(seed: u64) -> AnalogNetwork {
    let mut r = ChaCha8Rng::seed_from_u64(seed);
    let net = Network::new(vec![
        Layer::dense(wide_input(), 48, &mut r),
        Layer::relu(),
        Layer::dense(48, 10, &mut r),
    ]);
    compile_ann(&net).unwrap()
}

fn wide_snn(seed: u64) -> AnalogSpikingNetwork {
    let mut r = ChaCha8Rng::seed_from_u64(seed);
    let snn = SpikingNetwork::new(
        vec![
            SnnStage::Synaptic(Layer::dense(wide_input(), 48, &mut r)),
            SnnStage::IntegrateFire(IfPopulation::new(0.7, ResetMode::Subtract)),
            SnnStage::Synaptic(Layer::dense(48, 10, &mut r)),
            SnnStage::IntegrateFire(IfPopulation::new(0.7, ResetMode::Zero)),
        ],
        InputEncoding::Poisson,
    );
    compile_snn_default(&snn).unwrap()
}

struct PlanPoint {
    chips: usize,
    stages: usize,
    bottleneck_cycles: u64,
    single_pass_cycles: u64,
    speedup: f64,
    max_chip_cores: usize,
}

struct ExecPoint {
    mode: &'static str,
    strategy: ShardStrategy,
    chips: usize,
    single_ms: f64,
    sharded_ms: f64,
    read_energy_j: f64,
    noc_energy_j: f64,
    noc_energy_share: f64,
    link_flit_hops: u64,
    identical: bool,
    energy_rel_err: f64,
}

fn run_exec_point(
    mode: &'static str,
    strategy: ShardStrategy,
    chips: usize,
    ann: &AnalogNetwork,
    snn: &AnalogSpikingNetwork,
    x: &Tensor,
    energy_model: &EnergyModel,
) -> ExecPoint {
    let (single_ms, sharded_ms, want, got, e_single, e_sharded, waves_ok, stats) = if mode == "ann"
    {
        let mut single = ann.clone();
        let tm = Instant::now();
        let want = single.forward(x).unwrap();
        let single_ms = ms(tm);
        let mut sharded = ShardedAnalogNetwork::new(ann.clone(), chips, strategy).unwrap();
        let tm = Instant::now();
        let got = sharded.forward(x).unwrap();
        let sharded_ms = ms(tm);
        let waves_ok = single.waves() == sharded.waves();
        (
            single_ms,
            sharded_ms,
            want,
            got,
            single.read_energy().0,
            sharded.read_energy().0,
            waves_ok,
            sharded.traffic(),
        )
    } else {
        let mut single = snn.clone();
        let mut r1 = ChaCha8Rng::seed_from_u64(7);
        let tm = Instant::now();
        let want = single.run(x, TIMESTEPS, &mut r1).unwrap();
        let single_ms = ms(tm);
        let mut sharded = ShardedSpikingNetwork::new(snn.clone(), chips, strategy).unwrap();
        let mut r2 = ChaCha8Rng::seed_from_u64(7);
        let tm = Instant::now();
        let got = sharded.run(x, TIMESTEPS, &mut r2).unwrap();
        let sharded_ms = ms(tm);
        let waves_ok = single.waves() == sharded.waves();
        (
            single_ms,
            sharded_ms,
            want,
            got,
            single.read_energy().0,
            sharded.read_energy().0,
            waves_ok,
            sharded.traffic(),
        )
    };
    let energy_rel_err = rel_err(e_sharded, e_single);
    let identical = bits_equal(&want, &got) && waves_ok && energy_rel_err <= ENERGY_RTOL;
    let noc_energy_j = energy_model.noc_traffic_energy(&stats).0;
    ExecPoint {
        mode,
        strategy,
        chips,
        single_ms,
        sharded_ms,
        read_energy_j: e_sharded,
        noc_energy_j,
        noc_energy_share: noc_energy_j / (noc_energy_j + e_sharded).max(1e-300),
        link_flit_hops: stats.link_flit_hops,
        identical,
        energy_rel_err,
    }
}

fn main() {
    let samples = sample_count();
    let workers = nebula_tensor::pool::size();
    let energy_model = EnergyModel::default();

    // --- Plan study: VGG/13 SNN layer-pipelined across cluster sizes --
    let vgg = zoo::vgg13(10);
    let mut plan_points = Vec::new();
    for &chips in &CHIPS {
        let plan = plan_cluster(
            &vgg,
            &ClusterConfig::new(chips, ShardStrategy::LayerPipelined),
            ExecMode::Snn { timesteps: 1 },
        )
        .unwrap();
        plan_points.push(PlanPoint {
            chips,
            stages: plan.stage_count,
            bottleneck_cycles: plan.bottleneck_cycles,
            single_pass_cycles: plan.single_pass_cycles,
            speedup: plan.speedup(PLAN_BATCHES),
            max_chip_cores: plan.per_chip_cores.iter().copied().max().unwrap_or(0),
        });
    }

    // --- Execution study: wide MLP, both modes × strategies × N -------
    let ann = wide_ann(2026);
    let snn = wide_snn(2027);
    let mut r = ChaCha8Rng::seed_from_u64(99);
    let x = Tensor::rand_uniform(&[samples, wide_input()], 0.0, 1.0, &mut r);
    let mut exec_points = Vec::new();
    for mode in ["ann", "snn"] {
        for strategy in [ShardStrategy::LayerPipelined, ShardStrategy::TensorSharded] {
            for &chips in &CHIPS {
                exec_points.push(run_exec_point(
                    mode,
                    strategy,
                    chips,
                    &ann,
                    &snn,
                    &x,
                    &energy_model,
                ));
            }
        }
    }

    // --- Over-capacity study ------------------------------------------
    // 16384×256 dense: 16 ANN cores > the 14-core pool. One chip rejects
    // it with a typed error; 4 tensor-sharded chips run it.
    let oc_desc = vec![LayerDescriptor::dense(0, "wide_fc", 16384, 256)];
    let oc_err = fits_chip(&oc_desc, &ChipConfig::default(), ExecMode::Ann)
        .expect_err("wide_fc must overflow one chip's ANN pool");
    let oc_plan = plan_cluster(
        &oc_desc,
        &ClusterConfig::new(4, ShardStrategy::TensorSharded),
        ExecMode::Ann,
    )
    .unwrap();
    let mut r_oc = ChaCha8Rng::seed_from_u64(5150);
    let oc_net = compile_ann(&Network::new(vec![Layer::dense(16384, 256, &mut r_oc)])).unwrap();
    let x_oc = Tensor::rand_uniform(&[2, 16384], 0.0, 1.0, &mut r_oc);
    let oc_want = oc_net.clone().forward(&x_oc).unwrap();
    let mut oc_sharded =
        ShardedAnalogNetwork::new(oc_net, 4, ShardStrategy::TensorSharded).unwrap();
    let oc_got = oc_sharded.forward(&x_oc).unwrap();
    let oc_identical = bits_equal(&oc_want, &oc_got);
    let oc_max_chip_cores = oc_plan.per_chip_cores.iter().copied().max().unwrap_or(0);

    // --- JSON ----------------------------------------------------------
    let all_identical = exec_points.iter().all(|p| p.identical) && oc_identical;
    let max_energy_err = exec_points
        .iter()
        .map(|p| p.energy_rel_err)
        .fold(0.0, f64::max);
    let speedup_at_4 = plan_points
        .iter()
        .find(|p| p.chips == 4)
        .map(|p| p.speedup)
        .unwrap_or(f64::NAN);

    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"nebula-bench-multichip/1\",\n");
    json.push_str(&format!("  \"samples\": {samples},\n"));
    json.push_str(&format!("  \"workers\": {workers},\n"));
    json.push_str(&format!("  \"plan_batches\": {PLAN_BATCHES},\n"));
    json.push_str("  \"plan\": [\n");
    for (i, p) in plan_points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"model\": \"vgg13\", \"mode\": \"snn\", \"strategy\": \"layer_pipelined\", \"chips\": {}, \"stages\": {}, \"bottleneck_cycles\": {}, \"single_pass_cycles\": {}, \"speedup\": {:.4}, \"max_chip_cores\": {}}}{}\n",
            p.chips,
            p.stages,
            p.bottleneck_cycles,
            p.single_pass_cycles,
            p.speedup,
            p.max_chip_cores,
            if i + 1 < plan_points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"execution\": [\n");
    for (i, p) in exec_points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"model\": \"wide_mlp\", \"mode\": \"{}\", \"strategy\": \"{}\", \"chips\": {}, \"single_ms\": {:.3}, \"sharded_ms\": {:.3}, \"read_energy_j\": {:.6e}, \"noc_energy_j\": {:.6e}, \"noc_energy_share\": {:.6}, \"link_flit_hops\": {}, \"identical\": {}, \"energy_rel_err\": {:.3e}}}{}\n",
            p.mode,
            p.strategy.name(),
            p.chips,
            p.single_ms,
            p.sharded_ms,
            p.read_energy_j,
            p.noc_energy_j,
            p.noc_energy_share,
            p.link_flit_hops,
            p.identical,
            p.energy_rel_err,
            if i + 1 < exec_points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"over_capacity\": {{\"model\": \"wide_fc 16384x256\", \"mode\": \"ann\", \"unsharded_error\": \"{}\", \"demanded\": {}, \"available\": {}, \"sharded_chips\": 4, \"max_chip_cores\": {}, \"ran_sharded\": true, \"identical\": {}}},\n",
        oc_err.to_string().replace('"', "\\\""),
        oc_err.demanded,
        oc_err.available,
        oc_max_chip_cores,
        oc_identical
    ));
    json.push_str(&format!(
        "  \"summary\": {{\"identical\": {}, \"max_energy_rel_err\": {:.3e}, \"pipeline_speedup_at_4_chips\": {:.4}}}\n",
        all_identical, max_energy_err, speedup_at_4
    ));
    json.push_str("}\n");

    let path = if std::path::Path::new("results").is_dir() {
        "results/BENCH_multichip.json"
    } else {
        "BENCH_multichip.json"
    };
    std::fs::write(path, &json).expect("write BENCH_multichip.json");

    println!("BENCH multichip ({samples} samples), written to {path}\n");
    println!("  plan: VGG/13 SNN layer-pipelined, batch depth {PLAN_BATCHES}");
    for p in &plan_points {
        println!(
            "    chips {:>2}  stages {:>2}  bottleneck {:>12} cyc  speedup {:>6.3}  max cores/chip {:>3}",
            p.chips, p.stages, p.bottleneck_cycles, p.speedup, p.max_chip_cores
        );
    }
    println!("\n  execution: wide 9-segment MLP, {samples} samples");
    for p in &exec_points {
        println!(
            "    {:>3} {:<15} chips {:>2}  single {:>8.1} ms  sharded {:>8.1} ms  noc share {:>9.2e}  link flit-hops {:>9}  identical: {}",
            p.mode,
            p.strategy.name(),
            p.chips,
            p.single_ms,
            p.sharded_ms,
            p.noc_energy_share,
            p.link_flit_hops,
            p.identical,
        );
    }
    println!(
        "\n  over-capacity: wide_fc demanded {} > {} available → \"{}\"; ran tensor-sharded on 4 chips (max {}/chip), identical: {}",
        oc_err.demanded, oc_err.available, oc_err, oc_max_chip_cores, oc_identical
    );

    assert!(all_identical, "sharded execution diverged from single-chip");
    assert!(
        max_energy_err <= ENERGY_RTOL,
        "sharded energy deviated {max_energy_err:.3e} > {ENERGY_RTOL:.0e} relative"
    );
    assert!(
        speedup_at_4 > 1.5,
        "4-chip pipeline speedup {speedup_at_4:.3} ≤ 1.5 at depth {PLAN_BATCHES}"
    );
    let remote_traffic = exec_points
        .iter()
        .any(|p| p.chips > 1 && p.link_flit_hops > 0);
    assert!(remote_traffic, "no leg ever crossed a chip-to-chip link");
    assert!(
        oc_err.demanded > oc_err.available,
        "over-capacity model unexpectedly fits one chip"
    );
}
