//! # nebula-bench
//!
//! Experiment harness regenerating every table and figure of the NEBULA
//! paper's evaluation. Each artifact has a dedicated binary
//! (`cargo run --release -p nebula-bench --bin <id>`); see `DESIGN.md`
//! for the experiment index and `EXPERIMENTS.md` for recorded results.
//!
//! The [`table`] module renders aligned text tables; [`setup`] trains the
//! scaled workload models the accuracy experiments share.

#![warn(missing_docs)]

pub mod setup;
pub mod table;

pub use setup::{trained, Trained, Workload};
pub use table::{print_table, Row};
