//! # nebula-bench
//!
//! Experiment harness regenerating every table and figure of the NEBULA
//! paper's evaluation. Each artifact has a dedicated binary
//! (`cargo run --release -p nebula-bench --bin <id>`); see `DESIGN.md`
//! for the experiment index and `EXPERIMENTS.md` for recorded results.
//!
//! The [`table`] module renders aligned text tables; [`setup`] trains the
//! scaled workload models the accuracy experiments share; [`par`] fans
//! independent per-workload computations out across scoped threads.

#![warn(missing_docs)]

pub mod par;
pub mod setup;
pub mod table;

pub use par::{par_map, par_map_with_workers};
pub use setup::{trained, Trained, Workload};
pub use table::{print_table, Row};
