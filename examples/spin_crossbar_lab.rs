//! Spin-crossbar laboratory: poke the device and circuit layers
//! directly.
//!
//! Programs DW-MTJ synapses, sweeps the device transfer characteristic,
//! runs analog dot products through a super-tile with current-domain
//! aggregation, feeds the result into spin neurons, and quantifies the
//! analog error against exact arithmetic — including the effect of 10%
//! device variation.
//!
//! Run with: `cargo run --release --example spin_crossbar_lab`

use nebula::crossbar::{AtomicCrossbar, CrossbarConfig, Mode, NeuronUnit, SuperTile};
use nebula::device::params::DeviceParams;
use nebula::device::synapse::transfer_characteristic;
use rand::Rng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = DeviceParams::default();
    println!(
        "DW-MTJ device: {} states over a {} nm free layer, R_AP/R_P = {}x",
        params.levels(),
        params.free_layer_length().as_nm(),
        params.tmr_ratio()
    );

    // 1. Device transfer characteristic (Fig. 1b).
    let curve = transfer_characteristic(&params, params.full_scale_current(), 6);
    println!("\nprogramming-current sweep:");
    for p in &curve {
        println!(
            "  I = {:5.1} uA → wall moves {:5.1} nm, dG = {:.3} uS",
            p.current.0 * 1e6,
            p.displacement.as_nm(),
            p.conductance_change.0 * 1e6
        );
    }

    // 2. Analog dot product in one atomic crossbar vs exact math.
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let rows = 64;
    let cols = 32;
    let weights: Vec<Vec<f64>> = (0..rows)
        .map(|_| (0..cols).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let inputs: Vec<f64> = (0..rows).map(|_| rng.gen_range(0.0..1.0)).collect();
    let mut xbar = AtomicCrossbar::new(CrossbarConfig::paper_default(Mode::Ann))?;
    xbar.program(&weights, 1.0)?;
    let currents = xbar.dot(&inputs)?;
    let unit = xbar.unit_current().0;
    let mut worst = 0.0f64;
    for j in 0..cols {
        let exact: f64 = (0..rows).map(|i| inputs[i] * weights[i][j]).sum();
        let analog = currents[j].0 / unit;
        worst = worst.max((analog - exact).abs());
    }
    println!("\n64×32 analog dot product: worst column error {worst:.3} (weight units)");
    println!("read energy so far: {}", xbar.accumulated_read_energy());

    // 3. Device variation: the same crossbar with 10% conductance noise.
    let mut noisy_cfg = CrossbarConfig::paper_default(Mode::Ann);
    noisy_cfg.read_noise_sigma = 0.10;
    let mut noisy = AtomicCrossbar::new(noisy_cfg)?;
    noisy.program(&weights, 1.0)?;
    let noisy_currents = noisy.dot_with_noise(&inputs, &mut rng)?;
    let mut worst_noisy = 0.0f64;
    for j in 0..cols {
        let exact: f64 = (0..rows).map(|i| inputs[i] * weights[i][j]).sum();
        worst_noisy = worst_noisy.max((noisy_currents[j].0 / unit - exact).abs());
    }
    println!("with 10% device variation: worst column error {worst_noisy:.3}");

    // 4. A big kernel through the super-tile's current-domain hierarchy.
    let mut st = SuperTile::new(CrossbarConfig::paper_default(Mode::Snn))?;
    let rf = 600; // needs H2: 4M < 600... (M=128: 512 < 600 ≤ 2048)
    let kernel = vec![vec![1.0]; rf];
    let level = st.program(&kernel, 1.0)?;
    let spikes: Vec<f64> = (0..rf).map(|_| f64::from(rng.gen_bool(0.3))).collect();
    let active = spikes.iter().sum::<f64>();
    let out = st.dot(&spikes)?;
    let value = out[0].0 / st.unit_current().0;
    println!(
        "\nR_f = {rf} kernel aggregated at NU level {level:?}: {active} spikes in, \
         dot = {value:.1} (exact {active})"
    );

    // 5. Spin neurons integrate the column current until threshold.
    let mut nu = NeuronUnit::new_spiking(1, 40.0, &params)?;
    let mut fired_at = None;
    for step in 1..=20 {
        if nu.process(&[value])?[0] > 0.0 {
            fired_at = Some(step);
            break;
        }
    }
    match fired_at {
        Some(step) => println!("IF neuron (v_th=40) fired after {step} timesteps"),
        None => println!("IF neuron did not fire in 20 timesteps"),
    }
    println!("neuron write energy: {}", nu.accumulated_write_energy());
    Ok(())
}
