//! Quickstart: the NEBULA pipeline in ~60 lines.
//!
//! Trains a tiny ANN on a toy task, quantizes it to the chip's 4-bit
//! precision, converts it to a spiking network, and compares the
//! architecture-level energy and power of running VGG-13 in ANN vs SNN
//! mode on the NEBULA chip.
//!
//! Run with: `cargo run --release --example quickstart`

use nebula::core::energy::EnergyModel;
use nebula::core::engine::{evaluate_ann, evaluate_snn};
use nebula::nn::convert::{ann_to_snn, ConversionConfig};
use nebula::nn::optim::{train, Dataset, TrainConfig};
use nebula::nn::quant::{quantize_network, QuantConfig};
use nebula::nn::{Layer, Network};
use nebula::tensor::Tensor;
use nebula::workloads::zoo;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train a small ANN: classify which of two inputs is larger.
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let mut net = Network::new(vec![
        Layer::dense(2, 16, &mut rng),
        Layer::relu(),
        Layer::dense(16, 2, &mut rng),
    ]);
    let inputs = Tensor::rand_uniform(&[200, 2], 0.0, 1.0, &mut rng);
    let labels: Vec<usize> = (0..200)
        .map(|i| usize::from(inputs.data()[2 * i] < inputs.data()[2 * i + 1]))
        .collect();
    let data = Dataset::new(inputs, labels)?;
    train(
        &mut net,
        &data,
        &TrainConfig::builder().epochs(30).batch_size(20).build(),
        &mut rng,
    )?;
    let ann_acc = net.accuracy(&data.inputs, &data.labels)?;
    println!("ANN accuracy:            {:.1}%", ann_acc * 100.0);

    // 2. Quantize to the chip's 4-bit weights/activations (16 levels).
    let quantized = quantize_network(&net, &data, &QuantConfig::default())?;
    let mut q = quantized.clone();
    println!(
        "4-bit quantized accuracy: {:.1}%",
        q.accuracy(&data.inputs, &data.labels)? * 100.0
    );

    // 3. Convert to a spiking network and evaluate with rate coding.
    let mut snn = ann_to_snn(&quantized, &data, &ConversionConfig::default())?;
    let snn_acc = snn.accuracy(&data.inputs, &data.labels, 200, &mut rng)?;
    println!("SNN accuracy (T=200):     {:.1}%", snn_acc * 100.0);

    // 4. Architecture level: VGG-13 on the NEBULA chip, both modes.
    let model = EnergyModel::default();
    let vgg = zoo::vgg13(10);
    let ann_hw = evaluate_ann(&model, &vgg);
    let snn_hw = evaluate_snn(&model, &vgg, 300);
    println!("\nVGG-13 on the NEBULA chip:");
    println!(
        "  ANN mode: {:.2} uJ/inference at {} average power",
        ann_hw.total_energy().0 * 1e6,
        ann_hw.avg_power
    );
    println!(
        "  SNN mode: {:.2} uJ/inference at {} average power (T=300)",
        snn_hw.total_energy().0 * 1e6,
        snn_hw.avg_power
    );
    println!(
        "  → SNN mode is {:.1}× more power-efficient (paper: ≥6.25×)",
        ann_hw.avg_power / snn_hw.avg_power
    );
    Ok(())
}
