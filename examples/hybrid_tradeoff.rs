//! Hybrid SNN-ANN design-space exploration (the paper's §V-B / Fig. 17).
//!
//! Trains a scaled VGG, then sweeps the hybrid split point and the
//! evidence-integration window, reporting accuracy together with the
//! chip-level energy and power of each configuration — the
//! latency/energy/power trade-off table a system designer would use to
//! pick an operating point.
//!
//! Run with: `cargo run --release --example hybrid_tradeoff`

use nebula::core::energy::EnergyModel;
use nebula::core::engine::{evaluate_ann, evaluate_hybrid, evaluate_snn};
use nebula::nn::convert::{ann_to_snn, ConversionConfig};
use nebula::nn::optim::{train, TrainConfig};
use nebula::nn::HybridNetwork;
use nebula::workloads::scaled::scaled_vgg;
use nebula::workloads::synthetic::{generate, split, SyntheticConfig};
use nebula::workloads::zoo;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = generate(&SyntheticConfig::textures(16, 10, 600))?;
    let (train_set, test_set) = split(&data, 480);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let mut net = scaled_vgg(16, 10, &mut rng);
    let cfg = TrainConfig::builder()
        .epochs(20)
        .batch_size(32)
        .learning_rate(0.02)
        .build();
    train(&mut net, &train_set, &cfg, &mut rng)?;
    println!(
        "ANN accuracy: {:.1}%",
        net.accuracy(&test_set.inputs, &test_set.labels)? * 100.0
    );

    // Accuracy at a starved window: pure SNN vs hybrids.
    let conv_cfg = ConversionConfig::default();
    let calib = train_set.take(64);
    let mut snn = ann_to_snn(&net, &calib, &conv_cfg)?;
    println!("\naccuracy at starved evidence windows (mean of 4 Poisson draws):");
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>8}",
        "T", "SNN", "Hyb-1", "Hyb-2", "Hyb-3"
    );
    for t in [60usize, 15, 8, 4] {
        let mut row = vec![format!("{t:>8}")];
        let avg = |acc: &mut dyn FnMut(&mut rand::rngs::StdRng) -> f64,
                   rng: &mut rand::rngs::StdRng| {
            let mut s = 0.0;
            for _ in 0..4 {
                s += acc(rng);
            }
            s / 4.0 * 100.0
        };
        let a = avg(
            &mut |r| {
                snn.accuracy(&test_set.inputs, &test_set.labels, t, r)
                    .unwrap()
            },
            &mut rng,
        );
        row.push(format!("{a:>7.1}%"));
        for k in 1..=3 {
            let mut hyb = HybridNetwork::split(&net, &calib, k, &conv_cfg)?;
            let a = avg(
                &mut |r| {
                    hyb.accuracy(&test_set.inputs, &test_set.labels, t, r)
                        .unwrap()
                },
                &mut rng,
            );
            row.push(format!("{a:>7.1}%"));
        }
        println!("{}", row.join(" "));
    }

    // Chip-level cost of the same design points, using the full-size
    // VGG-13 descriptors (what the real deployment would run).
    let model = EnergyModel::default();
    let vgg = zoo::vgg13(10);
    let ann_hw = evaluate_ann(&model, &vgg);
    let snn_hw = evaluate_snn(&model, &vgg, 300);
    println!("\nchip-level trade-off (full-size VGG-13):");
    println!(
        "  pure SNN @300: {:8.2} uJ  {:>12} avg",
        snn_hw.total_energy().0 * 1e6,
        format!("{}", snn_hw.avg_power)
    );
    for (k, t) in [(1usize, 225u32), (2, 150), (3, 100)] {
        let h = evaluate_hybrid(&model, &vgg, k, t);
        println!(
            "  {:>9} : {:8.2} uJ  {:>12} avg",
            h.mode,
            h.total_energy().0 * 1e6,
            format!("{}", h.avg_power())
        );
    }
    println!(
        "  pure ANN     : {:8.2} uJ  {:>12} avg",
        ann_hw.total_energy().0 * 1e6,
        format!("{}", ann_hw.avg_power)
    );
    println!("\nHybrids trade a little of the SNN's power advantage for a large");
    println!("cut in energy and latency — the paper's recommended middle ground.");
    Ok(())
}
