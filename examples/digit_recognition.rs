//! Edge digit recognition, end to end: the paper's motivating scenario
//! of ultra-low-power inference on a battery-powered device.
//!
//! Trains a scaled LeNet on synthetic glyphs, quantizes it to 4 bits,
//! converts it to a spiking network, measures accuracy at several
//! evidence-integration windows, and reports what one inference costs on
//! the NEBULA chip in SNN mode versus ANN mode.
//!
//! Run with: `cargo run --release --example digit_recognition`

use nebula::core::energy::EnergyModel;
use nebula::core::engine::{evaluate_ann, evaluate_snn};
use nebula::nn::convert::{ann_to_snn, ConversionConfig};
use nebula::nn::optim::{train, TrainConfig};
use nebula::nn::quant::{quantize_network, QuantConfig};
use nebula::nn::stats::describe_network;
use nebula::workloads::scaled::scaled_lenet;
use nebula::workloads::synthetic::{generate, split, SyntheticConfig};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- data & training -------------------------------------------------
    let data = generate(&SyntheticConfig::glyphs(16, 600))?;
    let (train_set, test_set) = split(&data, 480);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut net = scaled_lenet(16, 10, &mut rng);
    let cfg = TrainConfig::builder()
        .epochs(15)
        .batch_size(32)
        .learning_rate(0.02)
        .build();
    let reports = train(&mut net, &train_set, &cfg, &mut rng)?;
    println!(
        "trained LeNet: {:.1}% train accuracy after {} epochs",
        reports.last().map_or(0.0, |r| r.accuracy) * 100.0,
        reports.len()
    );
    println!(
        "held-out ANN accuracy: {:.1}%",
        net.accuracy(&test_set.inputs, &test_set.labels)? * 100.0
    );

    // --- 4-bit quantization + SNN conversion ------------------------------
    let quantized = quantize_network(&net, &train_set.take(64), &QuantConfig::default())?;
    let mut snn = ann_to_snn(
        &quantized,
        &train_set.take(64),
        &ConversionConfig::default(),
    )?;
    println!("\naccuracy vs evidence-integration window:");
    for timesteps in [5usize, 10, 20, 40, 80] {
        let acc = snn.accuracy(&test_set.inputs, &test_set.labels, timesteps, &mut rng)?;
        println!("  T = {timesteps:3}: {:.1}%", acc * 100.0);
    }

    // --- what does an inference cost on the chip? -------------------------
    // Describe the trained topology and attach measured spike activity.
    let mut descriptors = describe_network(&net, &[1, 16, 16])?;
    let run = snn.run(&test_set.take(50).inputs, 40, &mut rng)?;
    // The recorded IF activity of layer i drives the energy of layer i+1;
    // layer 0 sees the Poisson-encoded input (~mean pixel intensity).
    let mut activities = vec![test_set.inputs.mean() as f64];
    activities.extend(run.stats.activity_per_layer.iter().copied());
    for (d, a) in descriptors.iter_mut().zip(activities) {
        d.input_activity = a;
    }

    let model = EnergyModel::default();
    let ann_hw = evaluate_ann(&model, &descriptors);
    let snn_hw = evaluate_snn(&model, &descriptors, 40);
    println!("\nper-inference cost on NEBULA (scaled LeNet):");
    println!(
        "  ANN mode: {:.3} uJ, {} avg power, {:.1} us latency",
        ann_hw.total_energy().0 * 1e6,
        ann_hw.avg_power,
        ann_hw.latency.0 * 1e6
    );
    println!(
        "  SNN mode: {:.3} uJ, {} avg power, {:.1} us latency (T=40)",
        snn_hw.total_energy().0 * 1e6,
        snn_hw.avg_power,
        snn_hw.latency.0 * 1e6
    );
    println!(
        "  power advantage of spiking inference: {:.1}x",
        ann_hw.avg_power / snn_hw.avg_power
    );
    Ok(())
}
