//! `nebula-cli` — price, map and inspect workloads on the NEBULA chip
//! from the command line.
//!
//! ```text
//! nebula-cli list
//! nebula-cli chip
//! nebula-cli device
//! nebula-cli map vgg13
//! nebula-cli price vgg13 --mode snn --timesteps 300
//! nebula-cli price alexnet --mode hybrid --timesteps 250 --ann-layers 2
//! ```

use nebula::core::components;
use nebula::core::energy::EnergyModel;
use nebula::core::engine::{evaluate_ann, evaluate_hybrid, evaluate_snn};
use nebula::core::mapper::map_network;
use nebula::core::pipeline;
use nebula::device::params::DeviceParams;
use nebula::device::synapse::transfer_characteristic;
use nebula::nn::stats::LayerDescriptor;
use nebula::workloads::zoo;
use std::process::ExitCode;

fn model_by_name(name: &str) -> Option<Vec<LayerDescriptor>> {
    match name.to_ascii_lowercase().as_str() {
        "mlp" => Some(zoo::mlp()),
        "lenet" | "lenet5" => Some(zoo::lenet5()),
        "vgg13" | "vgg" => Some(zoo::vgg13(10)),
        "vgg13-100" => Some(zoo::vgg13(100)),
        "mobilenet" => Some(zoo::mobilenet_v1(10)),
        "mobilenet-100" => Some(zoo::mobilenet_v1(100)),
        "svhn" => Some(zoo::svhn_net()),
        "alexnet" => Some(zoo::alexnet()),
        _ => None,
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: nebula-cli <command>\n\
         \n\
         commands:\n\
         \x20 list                         available workloads\n\
         \x20 chip                         chip power/area budget (Table III)\n\
         \x20 device                       DW-MTJ device parameters + transfer curve\n\
         \x20 map <model>                  per-layer crossbar mapping\n\
         \x20 price <model> [options]     energy/power/latency per inference\n\
         \n\
         price options:\n\
         \x20 --mode ann|snn|hybrid        execution mode (default ann)\n\
         \x20 --timesteps N                SNN/hybrid evidence window (default 300)\n\
         \x20 --ann-layers K               hybrid: trailing ANN layers (default 1)"
    );
    ExitCode::from(2)
}

fn cmd_list() {
    println!("available workloads:");
    for (name, layers) in zoo::all_models() {
        let macs: u64 = layers.iter().map(|l| l.macs).sum();
        println!(
            "  {:<16} {:>2} weight layers, {:>6.1} MMACs/inference",
            name,
            layers.len(),
            macs as f64 / 1e6
        );
    }
    println!("\nnames accepted by `map`/`price`: mlp lenet vgg13 vgg13-100 mobilenet mobilenet-100 svhn alexnet");
}

fn cmd_chip() {
    println!("NEBULA chip budget (Table III):");
    println!(
        "  {} ANN cores  @ {} / {:.3} mm^2",
        components::ANN_CORES,
        components::ann_core_power(),
        components::ann_core_area().0
    );
    println!(
        "  {} SNN cores @ {} / {:.3} mm^2",
        components::SNN_CORES,
        components::snn_core_power(),
        components::snn_core_area().0
    );
    println!(
        "  {} accumulator units @ {}",
        components::ACCUMULATORS,
        components::ACCUMULATOR_UNIT.power
    );
    println!(
        "  chip total: {:.2} W, {:.1} mm^2, {} ns pipeline cycle",
        components::chip_power().0,
        components::chip_area().0,
        components::CYCLE.as_ns()
    );
}

fn cmd_device() {
    let p = DeviceParams::default();
    println!("DW-MTJ device (paper-calibrated):");
    println!("  free layer          {} nm", p.free_layer_length().as_nm());
    println!(
        "  pinning pitch       {} nm ({} states)",
        p.pinning_resolution().as_nm(),
        p.levels()
    );
    println!("  switching time      {} ns", p.switching_time().as_ns());
    println!(
        "  critical current    {:.1} uA",
        p.critical_current().0 * 1e6
    );
    println!(
        "  full-scale current  {:.1} uA",
        p.full_scale_current().0 * 1e6
    );
    println!("  TMR ratio           {}x", p.tmr_ratio());
    println!("\ntransfer curve (I -> DW displacement):");
    for pt in transfer_characteristic(&p, p.full_scale_current(), 6) {
        println!(
            "  {:5.1} uA -> {:6.1} nm",
            pt.current.0 * 1e6,
            pt.displacement.as_nm()
        );
    }
}

fn cmd_map(model: &str) -> ExitCode {
    let Some(layers) = model_by_name(model) else {
        eprintln!("unknown model `{model}` (try `nebula-cli list`)");
        return ExitCode::from(2);
    };
    println!(
        "{:<10} {:>6} {:>8} {:>6} {:>6} {:>7} {:>5} {:>8}",
        "layer", "R_f", "kernels", "cores", "ACs", "util%", "ADC", "cycles"
    );
    for (m, d) in map_network(&layers).iter().zip(&layers) {
        println!(
            "{:<10} {:>6} {:>8} {:>6} {:>6} {:>6.1}% {:>5} {:>8}",
            m.name,
            d.receptive_field,
            d.kernels,
            m.cores,
            m.acs_used,
            m.utilization * 100.0,
            if m.needs_adc() { "yes" } else { "no" },
            pipeline::layer_latency_cycles(m, 1),
        );
    }
    ExitCode::SUCCESS
}

fn cmd_price(model: &str, args: &[String]) -> ExitCode {
    let Some(layers) = model_by_name(model) else {
        eprintln!("unknown model `{model}` (try `nebula-cli list`)");
        return ExitCode::from(2);
    };
    let mut mode = "ann".to_string();
    let mut timesteps: u32 = 300;
    let mut ann_layers: usize = 1;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--mode" => mode = it.next().cloned().unwrap_or_default(),
            "--timesteps" => {
                timesteps = it.next().and_then(|v| v.parse().ok()).unwrap_or(timesteps)
            }
            "--ann-layers" => {
                ann_layers = it.next().and_then(|v| v.parse().ok()).unwrap_or(ann_layers)
            }
            other => {
                eprintln!("unknown option `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let em = EnergyModel::default();
    match mode.as_str() {
        "ann" => print_report(&evaluate_ann(&em, &layers)),
        "snn" => print_report(&evaluate_snn(&em, &layers, timesteps)),
        "hybrid" => {
            let h = evaluate_hybrid(&em, &layers, ann_layers, timesteps);
            println!("mode          {}", h.mode);
            println!("energy        {:.3} uJ/inference", h.total_energy().0 * 1e6);
            println!("latency       {:.3} ms", h.latency().0 * 1e3);
            println!("avg power     {}", h.avg_power());
            println!("peak power    {}", h.peak_power());
            println!("AU energy     {}", h.accumulator);
        }
        other => {
            eprintln!("unknown mode `{other}` (ann|snn|hybrid)");
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}

fn print_report(r: &nebula::core::engine::InferenceReport) {
    println!("mode          {}", r.mode);
    println!("energy        {:.3} uJ/inference", r.total_energy().0 * 1e6);
    println!("latency       {:.3} ms", r.latency.0 * 1e3);
    println!("avg power     {}", r.avg_power);
    println!("peak power    {}", r.peak_power);
    println!("cores         {}", r.cores_used);
    println!("\nenergy breakdown:");
    for (name, frac) in r.total.fractions() {
        if frac > 0.0005 {
            println!("  {:<14} {:>5.1}%", name, frac * 100.0);
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            cmd_list();
            ExitCode::SUCCESS
        }
        Some("chip") => {
            cmd_chip();
            ExitCode::SUCCESS
        }
        Some("device") => {
            cmd_device();
            ExitCode::SUCCESS
        }
        Some("map") => match args.get(1) {
            Some(model) => cmd_map(model),
            None => usage(),
        },
        Some("price") => match args.get(1) {
            Some(model) => cmd_price(model, &args[2..]),
            None => usage(),
        },
        _ => usage(),
    }
}
