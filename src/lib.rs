//! # NEBULA
//!
//! A complete Rust reproduction of **"NEBULA: A Neuromorphic Spin-Based
//! Ultra-Low Power Architecture for SNNs and ANNs"** (Singh et al.,
//! ISCA 2020) — from the DW-MTJ device physics up to whole-chip
//! energy/power evaluation, plus the ISAAC and INXS baselines the paper
//! compares against.
//!
//! This facade crate re-exports the whole stack:
//!
//! | Layer | Module | What it models |
//! |---|---|---|
//! | Device | [`device`] | domain-wall MTJ synapses & spin neurons |
//! | Circuit | [`crossbar`] | all-spin crossbars, morphable tiles, NU hierarchy |
//! | Network-on-chip | [`noc`] | 14×14 mesh, augmented routing units |
//! | Architecture | [`core`] | neural cores, mapper, pipeline, energy model |
//! | Algorithms | [`nn`] | training, 4-bit quantization, ANN→SNN conversion, hybrids |
//! | Workloads | [`workloads`] | model zoo + synthetic datasets |
//! | Baselines | [`baselines`] | ISAAC and INXS analytical models |
//! | Substrate | [`tensor`] | dense tensor ops (matmul, conv, pooling) |
//!
//! # Quick start
//!
//! Train a small ANN, convert it to a spiking network, and compare the
//! architecture-level energy of both modes:
//!
//! ```
//! use nebula::nn::convert::{ann_to_snn, ConversionConfig};
//! use nebula::nn::optim::{train, Dataset, TrainConfig};
//! use nebula::nn::{Layer, Network};
//! use nebula::core::energy::EnergyModel;
//! use nebula::core::engine::{evaluate_ann, evaluate_snn};
//! use nebula::workloads::zoo;
//! use nebula::tensor::Tensor;
//! use rand::SeedableRng;
//!
//! // --- algorithm level: a toy two-feature classifier -----------------
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut net = Network::new(vec![
//!     Layer::dense(2, 8, &mut rng),
//!     Layer::relu(),
//!     Layer::dense(8, 2, &mut rng),
//! ]);
//! let data = Dataset::new(
//!     Tensor::from_vec(vec![0.9, 0.1, 0.1, 0.9, 0.8, 0.2, 0.2, 0.8], &[4, 2])?,
//!     vec![0, 1, 0, 1],
//! )?;
//! train(&mut net, &data, &TrainConfig::builder().epochs(40).batch_size(4).build(), &mut rng)?;
//! let mut snn = ann_to_snn(&net, &data, &ConversionConfig::default())?;
//! let _ = snn.accuracy(&data.inputs, &data.labels, 100, &mut rng)?;
//!
//! // --- architecture level: VGG-13 on the NEBULA chip ------------------
//! let model = EnergyModel::default();
//! let ann = evaluate_ann(&model, &zoo::vgg13(10));
//! let snn_hw = evaluate_snn(&model, &zoo::vgg13(10), 300);
//! assert!(ann.avg_power > snn_hw.avg_power); // SNN power advantage
//! assert!(snn_hw.total_energy() > ann.total_energy()); // at an energy cost
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use nebula_baselines as baselines;
pub use nebula_core as core;
pub use nebula_crossbar as crossbar;
pub use nebula_device as device;
pub use nebula_nn as nn;
pub use nebula_noc as noc;
pub use nebula_tensor as tensor;
pub use nebula_workloads as workloads;
