//! Offline shim for `rand_chacha` 0.3: a deterministic, seedable RNG
//! backed by the real ChaCha stream cipher with 8 rounds (the ChaCha
//! quarter-round/block construction is public domain, D. J. Bernstein).
//! Output is a high-quality deterministic stream per seed; it is not
//! bit-compatible with upstream `rand_chacha`, which nothing in this
//! workspace relies on.

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Cipher input state: constants, 256-bit key (the seed), 64-bit
    /// block counter, 64-bit stream id (always 0 here).
    state: [u32; 16],
    /// Current 64-byte keystream block as sixteen u32 words.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means "refill".
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.block.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(s);
        }
        // 64-bit little-endian block counter in words 12..14.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])) + 1;
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        // "expand 32-byte k" sigma constants.
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            state,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32();
        let hi = self.next_u32();
        u64::from(lo) | (u64::from(hi) << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn mean_of_unit_uniform_is_near_half() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }
}
