//! Distribution traits and the `Standard` distribution for primitive
//! types (mirror of `rand::distributions`).

use crate::RngCore;

pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform distribution over a type's "natural" range: `[0, 1)` for
/// floats, the full domain for integers and `bool`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod uniform {
    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A range that can be turned into a uniform sample (mirror of
    /// `rand::distributions::uniform::SampleRange`).
    pub trait SampleRange<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! float_range {
        ($t:ty, $unit:expr) => {
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let unit = $unit(rng);
                    self.start + (self.end - self.start) * unit
                }
            }
        };
    }
    float_range!(f64, |rng: &mut R| (rng.next_u64() >> 11) as f64
        * (1.0 / (1u64 << 53) as f64));
    float_range!(f32, |rng: &mut R| (rng.next_u32() >> 8) as f32
        * (1.0 / (1u32 << 24) as f32));

    macro_rules! int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = ((rng.next_u64() as u128) % span) as i128;
                    (self.start as i128 + v) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = ((rng.next_u64() as u128) % span) as i128;
                    (lo as i128 + v) as $t
                }
            }
        )*};
    }
    int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}
