//! Seedable generators (mirror of `rand::rngs`).

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator. Implemented as
/// xoshiro256++ (public-domain algorithm by Blackman & Vigna); streams
/// are deterministic per seed but not bit-compatible with upstream
/// `StdRng` (ChaCha12), which nothing here relies on.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn step(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }
}
