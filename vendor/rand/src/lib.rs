//! Offline shim for the subset of the `rand` 0.8 API used by this
//! workspace. The build environment has no access to crates.io, so the
//! workspace vendors a minimal, dependency-free implementation with the
//! same trait surface (`RngCore`, `SeedableRng`, `Rng`, `SliceRandom`)
//! and deterministic, seedable generators.
//!
//! Streams are deterministic per seed but are NOT bit-compatible with
//! upstream `rand`; nothing in the workspace depends on the upstream
//! bit streams.

pub mod distributions;
pub mod rngs;
pub mod seq;

/// Core random-number generation interface (mirror of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let word = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&word[..n]);
            i += n;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction (mirror of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with a PCG-style generator, as
    /// upstream `rand_core` does.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

use distributions::uniform::SampleRange;
use distributions::{Distribution, Standard};

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}
