//! Slice helpers (mirror of `rand::seq`).

use crate::{Rng, RngCore};

pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly pick one element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = rng.gen_range(0..self.len());
            Some(&self[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle should not be identity");
    }
}
