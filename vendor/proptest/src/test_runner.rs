//! Deterministic RNG for property tests.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test deterministic RNG. Seeded from the test's name (FNV-1a) so
/// every test draws an independent but reproducible input stream.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    pub fn deterministic(test_name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(hash),
        }
    }

    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}
