//! Offline shim for the subset of `proptest` used by this workspace:
//! the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`, range and
//! collection strategies, `prop_map`/`prop_flat_map`, and
//! `prop::sample::select`.
//!
//! Differences from upstream: inputs are drawn from a deterministic
//! per-test RNG (seeded from the test name) so CI runs are
//! reproducible, there is no shrinking — a failing case panics with the
//! generated inputs left to the assertion message — and the case count
//! defaults to 64 (override with the `PROPTEST_CASES` env var).

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// Mirror of `proptest::prelude::prop`, exposing the strategy
    /// modules under the conventional `prop::` path.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Number of cases each property runs; honors `PROPTEST_CASES`.
pub fn case_count() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..$crate::case_count() {
                    $(let $pat = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}
