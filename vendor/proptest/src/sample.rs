//! Sampling strategies (mirror of `proptest::sample`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.rng().gen_range(0..self.options.len());
        self.options[i].clone()
    }
}

/// Uniformly select one of the given options.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}
