//! The `Strategy` trait and combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`. Unlike upstream
/// proptest there is no value tree / shrinking; `new_value` draws one
/// concrete value from the deterministic test RNG.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// A strategy producing a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
