//! Collection strategies (mirror of `proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// Inclusive-exclusive size specification for [`vec`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let n = if self.size.lo + 1 >= self.size.hi {
            self.size.lo
        } else {
            rng.rng().gen_range(self.size.lo..self.size.hi)
        };
        (0..n).map(|_| self.elem.new_value(rng)).collect()
    }
}

/// `vec(strategy, len)` / `vec(strategy, lo..hi)` — a vector whose
/// elements are drawn from `strategy`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}
