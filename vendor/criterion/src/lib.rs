//! Offline shim for the subset of `criterion` 0.5 used by the bench
//! harness: `Criterion::bench_function`, `Bencher::iter`, `black_box`,
//! `criterion_group!` and `criterion_main!`. Runs each benchmark for a
//! fixed warm-up plus measurement round and prints mean iteration time;
//! no statistics, plots, or CLI are provided.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Default)]
pub struct Criterion {}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up.
        for _ in 0..3 {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

impl Criterion {
    /// Accepted for API compatibility; the shim calibrates iteration
    /// counts by wall-clock instead of sampling.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        // Calibrate the iteration count so a round takes ~100 ms.
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(100) || iters >= 1 << 20 {
                let per_iter = b.elapsed.as_nanos() as f64 / iters as f64;
                println!("{id}: {per_iter:.1} ns/iter ({iters} iterations)");
                return self;
            }
            iters *= 4;
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
