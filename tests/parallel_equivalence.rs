//! Tier-1 guarantee: every parallel path in the stack is bit-identical
//! to its sequential twin — tensor kernels, crossbar batching, and the
//! engine suite — regardless of worker count.

use nebula::core::energy::EnergyModel;
use nebula::core::engine::{evaluate_suite, par_evaluate_suite_with_workers, SuiteJob, SuiteMode};
use nebula::crossbar::config::{CrossbarConfig, Mode};
use nebula::crossbar::tile::SuperTile;
use nebula::tensor::{conv, par, ConvGeometry, Tensor};
use nebula::workloads::zoo;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_tensor(shape: &[usize], rng: &mut ChaCha8Rng) -> Tensor {
    let len: usize = shape.iter().product();
    let data: Vec<f32> = (0..len)
        .map(|_| {
            if rng.gen_bool(0.2) {
                0.0 // exact zeros exercise the spike-sparsity skip
            } else {
                rng.gen_range(-1.0f32..1.0)
            }
        })
        .collect();
    Tensor::from_vec(data, shape).unwrap()
}

#[test]
fn par_matmul_and_conv_match_sequential_exactly() {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let a = random_tensor(&[61, 47], &mut rng);
    let b = random_tensor(&[47, 31], &mut rng);
    let seq = a.matmul(&b).unwrap();
    for workers in [1, 2, 4, 9] {
        let p = par::matmul_with_workers(&a, &b, workers).unwrap();
        assert_eq!(p.data(), seq.data(), "matmul workers={workers}");
    }

    let x = random_tensor(&[2, 3, 11, 9], &mut rng);
    let w = random_tensor(&[5, 3, 3, 3], &mut rng);
    let bias = random_tensor(&[5], &mut rng);
    for geom in [ConvGeometry::same(3), ConvGeometry::new(3, 2, 0)] {
        let seq = conv::conv2d(&x, &w, Some(&bias), geom).unwrap();
        for workers in [1, 3, 8] {
            let p = par::conv2d_with_workers(&x, &w, Some(&bias), geom, workers).unwrap();
            assert_eq!(p.data(), seq.data(), "conv2d workers={workers} {geom:?}");
        }
    }
}

#[test]
fn supertile_dot_batch_matches_sequential_dots_exactly() {
    let mut cfg = CrossbarConfig::paper_default(Mode::Snn);
    cfg.m = 8;
    let mut st = SuperTile::new(cfg).unwrap();
    let rf = 30; // spans 4 ACs
    st.program(&vec![vec![0.75, -0.25, 0.5]; rf], 1.0).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let batch: Vec<Vec<f64>> = (0..6)
        .map(|_| {
            (0..rf)
                .map(|_| if rng.gen_bool(0.4) { 1.0 } else { 0.0 })
                .collect()
        })
        .collect();
    let mut seq = st.clone();
    let expected: Vec<_> = batch.iter().map(|b| seq.dot(b).unwrap()).collect();
    let got = st.dot_batch(&batch).unwrap();
    assert_eq!(got, expected);
}

#[test]
fn par_suite_matches_sequential_suite_exactly() {
    let model = EnergyModel::default();
    let jobs: Vec<SuiteJob> = zoo::all_models()
        .into_iter()
        .take(3)
        .flat_map(|(name, ds)| {
            [
                SuiteJob::new(name, ds.clone(), SuiteMode::Ann),
                SuiteJob::new(name, ds, SuiteMode::Snn { timesteps: 100 }),
            ]
        })
        .collect();
    let seq = evaluate_suite(&model, &jobs);
    for workers in [1, 2, 5] {
        let par = par_evaluate_suite_with_workers(&model, &jobs, workers);
        assert_eq!(par, seq, "suite workers={workers}");
    }
}
