//! End-to-end integration tests spanning the whole stack: data →
//! training → quantization → SNN conversion → hybrid execution →
//! architecture-level energy.

use nebula::core::energy::EnergyModel;
use nebula::core::engine::{evaluate_ann, evaluate_hybrid, evaluate_snn};
use nebula::nn::convert::{ann_to_snn, fold_batch_norm, ConversionConfig};
use nebula::nn::optim::{train, TrainConfig};
use nebula::nn::quant::{quantize_network, QuantConfig};
use nebula::nn::stats::describe_network;
use nebula::nn::HybridNetwork;
use nebula::workloads::scaled::{scaled_lenet, scaled_vgg_bn};
use nebula::workloads::synthetic::{generate, split, SyntheticConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn rng() -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(0xE2E)
}

#[test]
fn full_pipeline_glyphs_to_spikes() {
    // Train a scaled LeNet on glyphs, quantize, convert, run spiking.
    let data = generate(&SyntheticConfig::glyphs(16, 300)).unwrap();
    let (train_set, test_set) = split(&data, 240);
    let mut r = rng();
    let mut net = scaled_lenet(16, 10, &mut r);
    let cfg = TrainConfig::builder()
        .epochs(12)
        .batch_size(32)
        .learning_rate(0.02)
        .build();
    train(&mut net, &train_set, &cfg, &mut r).unwrap();
    let ann_acc = net.accuracy(&test_set.inputs, &test_set.labels).unwrap();
    assert!(ann_acc > 0.7, "ANN failed to train: {ann_acc}");

    let calib = train_set.take(48);
    let quantized = quantize_network(&net, &calib, &QuantConfig::default()).unwrap();
    let mut q = quantized.clone();
    let q_acc = q.accuracy(&test_set.inputs, &test_set.labels).unwrap();
    assert!(
        q_acc > ann_acc - 0.15,
        "4-bit quantization lost too much: {ann_acc} → {q_acc}"
    );

    let mut snn = ann_to_snn(&quantized, &calib, &ConversionConfig::default()).unwrap();
    let snn_acc = snn
        .accuracy(&test_set.inputs, &test_set.labels, 80, &mut r)
        .unwrap();
    assert!(
        snn_acc > q_acc - 0.15,
        "conversion lost too much: {q_acc} → {snn_acc}"
    );
}

#[test]
fn bn_network_converts_after_folding() {
    let data = generate(&SyntheticConfig::textures(16, 10, 240)).unwrap();
    let (train_set, test_set) = split(&data, 200);
    let mut r = rng();
    let mut net = scaled_vgg_bn(16, 10, &mut r);
    let cfg = TrainConfig::builder()
        .epochs(12)
        .batch_size(32)
        .learning_rate(0.02)
        .build();
    train(&mut net, &train_set, &cfg, &mut r).unwrap();
    let ann_acc = net.accuracy(&test_set.inputs, &test_set.labels).unwrap();

    // Folding preserves inference outputs.
    let mut folded = fold_batch_norm(&net).unwrap();
    let f_acc = folded.accuracy(&test_set.inputs, &test_set.labels).unwrap();
    assert!((ann_acc - f_acc).abs() < 1e-9, "folding changed accuracy");

    // And the folded network converts straight to an SNN.
    let mut snn = ann_to_snn(&net, &train_set.take(48), &ConversionConfig::default()).unwrap();
    let snn_acc = snn
        .accuracy(&test_set.inputs, &test_set.labels, 100, &mut r)
        .unwrap();
    assert!(
        snn_acc > ann_acc - 0.25,
        "BN-folded conversion degraded: {ann_acc} → {snn_acc}"
    );
}

#[test]
fn hybrid_beats_pure_snn_when_starved() {
    let data = generate(&SyntheticConfig::glyphs(16, 300)).unwrap();
    let (train_set, test_set) = split(&data, 240);
    let mut r = rng();
    let mut net = scaled_lenet(16, 10, &mut r);
    let cfg = TrainConfig::builder()
        .epochs(12)
        .batch_size(32)
        .learning_rate(0.02)
        .build();
    train(&mut net, &train_set, &cfg, &mut r).unwrap();
    let calib = train_set.take(48);
    let conv = ConversionConfig::default();
    let mut snn = ann_to_snn(&net, &calib, &conv).unwrap();
    let mut hyb = HybridNetwork::split(&net, &calib, 2, &conv).unwrap();
    let t = 3;
    let reps = 6;
    let mut snn_acc = 0.0;
    let mut hyb_acc = 0.0;
    for _ in 0..reps {
        snn_acc += snn
            .accuracy(&test_set.inputs, &test_set.labels, t, &mut r)
            .unwrap();
        hyb_acc += hyb
            .accuracy(&test_set.inputs, &test_set.labels, t, &mut r)
            .unwrap();
    }
    assert!(
        hyb_acc >= snn_acc,
        "hybrid ({hyb_acc}) must not trail SNN ({snn_acc}) at T={t}"
    );
}

#[test]
fn trained_network_maps_onto_the_chip() {
    // The descriptors of a real trained network drive the energy model.
    let mut r = rng();
    let net = scaled_lenet(16, 10, &mut r);
    let descriptors = describe_network(&net, &[1, 16, 16]).unwrap();
    assert_eq!(descriptors.len(), 4); // 2 conv + 2 fc
                                      // Attach a realistic decaying spike-activity profile: with the
                                      // default (fully dense, activity 1.0) inputs an SNN has no
                                      // event-driven advantage to exploit.
    let descriptors = nebula::workloads::zoo::with_default_activities(descriptors);

    let model = EnergyModel::default();
    let ann = evaluate_ann(&model, &descriptors);
    let snn = evaluate_snn(&model, &descriptors, 50);
    let hyb = evaluate_hybrid(&model, &descriptors, 1, 25);
    assert!(ann.total_energy().0 > 0.0);
    assert!(snn.total_energy() > ann.total_energy());
    assert!(hyb.total_energy() < snn.total_energy());
    assert!(ann.avg_power > snn.avg_power);
    // Every layer fits on the chip in-core (tiny network).
    assert!(ann.mappings.iter().all(|m| !m.needs_adc()));
}

#[test]
fn analog_executors_run_through_the_facade() {
    // Exercise the re-exported circuit-level executors end to end.
    use nebula::core::analog::compile_ann;
    use nebula::core::analog_snn::compile_snn_default;
    use nebula::crossbar::{CrossbarConfig, Mode};
    use nebula::nn::Layer;
    use nebula::tensor::Tensor;

    let mut r = rng();
    let mut net = nebula::nn::Network::new(vec![
        Layer::dense(6, 4, &mut r),
        Layer::relu(),
        Layer::dense(4, 2, &mut r),
    ]);
    for layer in net.layers_mut() {
        for p in layer.params_mut() {
            nebula::nn::quant::quantize_weights_inplace(&mut p.value, 16, 1.0);
        }
    }
    let x = Tensor::rand_uniform(&[3, 6], 0.0, 1.0, &mut r);
    // ANN path: circuit output matches digital within analog tolerance.
    let digital = net.forward(&x).unwrap();
    let mut analog = compile_ann(&net).unwrap();
    let y = analog.forward(&x).unwrap();
    assert_eq!(y.shape(), digital.shape());
    // Hidden ReLU is unquantized here, so only demand qualitative
    // agreement of the argmax decisions.
    assert_eq!(
        y.argmax_rows().unwrap(),
        digital.argmax_rows().unwrap(),
        "analog ANN decisions diverged"
    );

    // SNN path: converted network compiles and spikes.
    let calib = nebula::nn::optim::Dataset::new(x.clone(), vec![0, 1, 0]).unwrap();
    let snn = ann_to_snn(&net, &calib, &ConversionConfig::default()).unwrap();
    let mut analog_snn = compile_snn_default(&snn).unwrap();
    let potentials = analog_snn.run(&x, 50, &mut r).unwrap();
    assert_eq!(potentials.shape(), &[3, 2]);
    assert!(analog_snn.waves() > 0);
    // A custom crossbar config also compiles.
    let cfg = CrossbarConfig::paper_default(Mode::Snn);
    assert!(nebula::core::analog_snn::compile_snn(&snn, &cfg).is_ok());
}
