//! Property-based tests (proptest) over core data structures and
//! invariants of the stack.

use nebula::core::energy::{EnergyModel, ExecMode};
use nebula::core::mapper::map_layer;
use nebula::device::dw::DomainWall;
use nebula::device::params::DeviceParams;
use nebula::device::synapse::DwMtjSynapse;
use nebula::device::units::{Amps, Seconds};
use nebula::nn::loss::softmax_cross_entropy;
use nebula::nn::stats::LayerDescriptor;
use nebula::noc::{MeshNetwork, MeshTopology, NodeId};
use nebula::tensor::{avg_pool2d, avg_pool2d_backward, im2col, ConvGeometry, Tensor};
use proptest::prelude::*;

fn small_matrix() -> impl Strategy<Value = (usize, usize, Vec<f32>)> {
    (1usize..8, 1usize..8).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c).prop_map(move |v| (r, c, v))
    })
}

proptest! {
    #[test]
    fn transpose_is_an_involution((r, c, data) in small_matrix()) {
        let t = Tensor::from_vec(data, &[r, c]).unwrap();
        let back = t.transpose().unwrap().transpose().unwrap();
        prop_assert_eq!(t, back);
    }

    #[test]
    fn identity_is_matmul_neutral((r, c, data) in small_matrix()) {
        let t = Tensor::from_vec(data, &[r, c]).unwrap();
        let left = Tensor::eye(r).matmul(&t).unwrap();
        let right = t.matmul(&Tensor::eye(c)).unwrap();
        for (a, b) in t.data().iter().zip(left.data()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
        for (a, b) in t.data().iter().zip(right.data()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        (r, k, a) in small_matrix(),
        seed in 0u64..1000,
    ) {
        let c = 3usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::SeedableRng;
        let ta = Tensor::from_vec(a, &[r, k]).unwrap();
        let b1 = Tensor::rand_uniform(&[k, c], -1.0, 1.0, &mut rng);
        let b2 = Tensor::rand_uniform(&[k, c], -1.0, 1.0, &mut rng);
        let lhs = ta.matmul(&b1.add(&b2).unwrap()).unwrap();
        let rhs = ta.matmul(&b1).unwrap().add(&ta.matmul(&b2).unwrap()).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
        }
    }

    #[test]
    fn avg_pool_preserves_mean(n in 1usize..3, ch in 1usize..3, data in proptest::collection::vec(-5.0f32..5.0, 16)) {
        // 4x4 single tile replicated over batch/channels.
        let mut full = Vec::new();
        for _ in 0..n * ch {
            full.extend_from_slice(&data);
        }
        let t = Tensor::from_vec(full, &[n, ch, 4, 4]).unwrap();
        let pooled = avg_pool2d(&t, 2).unwrap();
        prop_assert!((pooled.mean() - t.mean()).abs() < 1e-4);
    }

    #[test]
    fn avg_pool_backward_preserves_gradient_mass(data in proptest::collection::vec(-5.0f32..5.0, 4)) {
        let g = Tensor::from_vec(data, &[1, 1, 2, 2]).unwrap();
        let dx = avg_pool2d_backward(&g, [1, 1, 4, 4], 2).unwrap();
        prop_assert!((dx.sum() - g.sum()).abs() < 1e-4);
    }

    #[test]
    fn im2col_row_count_matches_output_geometry(h in 4usize..10, w in 4usize..10, k in 1usize..4) {
        let x = Tensor::ones(&[1, 2, h, w]);
        let geom = ConvGeometry::new(k, 1, 0);
        if h >= k && w >= k {
            let cols = im2col(&x, geom).unwrap();
            let (oh, ow) = geom.out_hw(h, w).unwrap();
            prop_assert_eq!(cols.shape()[0], oh * ow);
            prop_assert_eq!(cols.shape()[1], 2 * k * k);
        }
    }

    #[test]
    fn softmax_ce_loss_is_nonnegative(
        logits in proptest::collection::vec(-20.0f32..20.0, 6),
        label in 0usize..3,
    ) {
        let t = Tensor::from_vec(logits, &[2, 3]).unwrap();
        let (loss, grad) = softmax_cross_entropy(&t, &[label, (label + 1) % 3]).unwrap();
        prop_assert!(loss >= -1e-6);
        // Gradient rows sum to ~0.
        for i in 0..2 {
            let s: f32 = grad.data()[i * 3..(i + 1) * 3].iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn domain_wall_position_stays_in_bounds(
        pulses in proptest::collection::vec((-60.0f64..60.0, 1.0f64..200.0), 1..40),
    ) {
        let p = DeviceParams::default();
        let mut wall = DomainWall::new(&p);
        for (ua, ns) in pulses {
            wall.apply_current(Amps(ua * 1e-6), Seconds(ns * 1e-9));
            let x = wall.normalized_position();
            prop_assert!((0.0..=1.0).contains(&x), "wall escaped: {}", x);
        }
        let state = wall.relax_to_pinning_site();
        prop_assert!(state < p.levels());
    }

    #[test]
    fn synapse_conductance_is_monotone_in_state(s1 in 0usize..16, s2 in 0usize..16) {
        let p = DeviceParams::default();
        let syn = DwMtjSynapse::new(&p);
        let g1 = syn.conductance_for_state(s1).unwrap().0;
        let g2 = syn.conductance_for_state(s2).unwrap().0;
        if s1 < s2 {
            prop_assert!(g1 < g2);
        } else if s1 > s2 {
            prop_assert!(g1 > g2);
        } else {
            prop_assert!((g1 - g2).abs() < 1e-18);
        }
    }

    #[test]
    fn mapper_invariants_hold_for_any_conv(
        in_c in 1usize..64,
        out_c in 1usize..256,
        k in prop::sample::select(vec![1usize, 3, 5, 7]),
        side in 8usize..64,
    ) {
        let d = LayerDescriptor::conv(0, "c", in_c, out_c, k, 1, k / 2, (side, side));
        let m = map_layer(&d);
        prop_assert!(m.cores >= 1);
        prop_assert!(m.acs_used >= 1);
        prop_assert!(m.utilization > 0.0 && m.utilization <= 1.0 + 1e-9);
        prop_assert_eq!(m.needs_adc(), d.receptive_field > 2048);
        prop_assert_eq!(m.cycles, (side * side) as u64);
    }

    #[test]
    fn snn_energy_is_monotone_in_timesteps(t1 in 1u32..400, t2 in 1u32..400) {
        let model = EnergyModel::default();
        let d = LayerDescriptor::conv(0, "c", 16, 32, 3, 1, 1, (16, 16)).with_activity(0.2);
        let m = map_layer(&d);
        let e1 = model.layer_energy(&m, ExecMode::Snn { timesteps: t1 }, 0.2).energy.total();
        let e2 = model.layer_energy(&m, ExecMode::Snn { timesteps: t2 }, 0.2).energy.total();
        if t1 < t2 {
            prop_assert!(e1 < e2);
        } else if t1 > t2 {
            prop_assert!(e1 > e2);
        }
    }

    #[test]
    fn mesh_hops_form_a_metric(w in 2usize..10, h in 2usize..10, a in 0usize..100, b in 0usize..100, c in 0usize..100) {
        let mesh = MeshTopology::new(w, h).unwrap();
        let n = mesh.nodes();
        let (a, b, c) = (NodeId(a % n), NodeId(b % n), NodeId(c % n));
        prop_assert_eq!(mesh.hops(a, a), 0);
        prop_assert_eq!(mesh.hops(a, b), mesh.hops(b, a));
        prop_assert!(mesh.hops(a, c) <= mesh.hops(a, b) + mesh.hops(b, c));
        // The XY route length equals hops + 1.
        prop_assert_eq!(mesh.xy_route(a, b).len(), mesh.hops(a, b) + 1);
    }

    #[test]
    fn noc_flit_accounting_is_additive(bits1 in 1u64..1000, bits2 in 1u64..1000) {
        let mut net = MeshNetwork::new(MeshTopology::new(4, 4).unwrap());
        let r1 = net.send(NodeId(0), NodeId(5), bits1).unwrap();
        let r2 = net.send(NodeId(0), NodeId(5), bits2).unwrap();
        prop_assert_eq!(net.stats().flit_hops, r1.flit_hops + r2.flit_hops);
        prop_assert_eq!(net.stats().transfers, 2);
    }
}
