//! The paper's headline quantitative claims, asserted as integration
//! tests over the full-size workloads. Bands are generous (we reproduce
//! shapes, not testbed-exact numbers) but directional claims are strict.

use nebula::baselines::compare::{inxs_vs_nebula_snn, isaac_vs_nebula_ann};
use nebula::baselines::inxs::InxsConfig;
use nebula::baselines::isaac::IsaacConfig;
use nebula::core::components;
use nebula::core::energy::EnergyModel;
use nebula::core::engine::{evaluate_ann, evaluate_hybrid, evaluate_snn};
use nebula::workloads::zoo;

#[test]
fn abstract_claim_ann_mode_beats_isaac() {
    // "up to 7.9× more energy efficient than ISAAC in the ANN mode"
    let model = EnergyModel::default();
    let cfg = IsaacConfig::adapted_4bit();
    let mut best = 0.0f64;
    for (_, ds) in zoo::all_models() {
        let (_, mean) = isaac_vs_nebula_ann(&cfg, &model, &ds);
        assert!(mean > 1.0, "NEBULA must beat ISAAC on every benchmark");
        best = best.max(mean);
    }
    assert!(
        (3.0..20.0).contains(&best),
        "best ISAAC win {best:.1}x outside the paper's up-to-7.9x regime"
    );
}

#[test]
fn abstract_claim_snn_mode_beats_inxs_by_tens() {
    // "about 45× more energy-efficient than INXS"
    let model = EnergyModel::default();
    let (_, mean) = inxs_vs_nebula_snn(&InxsConfig::default(), &model, &zoo::vgg13(10), 300);
    assert!(
        (15.0..100.0).contains(&mean),
        "INXS ratio {mean:.1}x far from the ~45x claim"
    );
}

#[test]
fn abstract_claim_snn_mode_power_advantage() {
    // "the latter is at least 6.25× more power-efficient"
    let model = EnergyModel::default();
    let table1 = [
        ("VGG-13", zoo::vgg13(10), 300u32),
        ("AlexNet", zoo::alexnet(), 500),
        ("MobileNet", zoo::mobilenet_v1(10), 500),
    ];
    for (name, ds, t) in table1 {
        let ann = evaluate_ann(&model, &ds);
        let snn = evaluate_snn(&model, &ds, t);
        let ratio = ann.avg_power / snn.avg_power;
        assert!(
            ratio > 3.0,
            "{name}: ANN/SNN power ratio {ratio:.1}x too small"
        );
    }
}

#[test]
fn fig17_claim_snn_energy_exceeds_ann_and_hybrids_interpolate() {
    let model = EnergyModel::default();
    for (ds, t) in [(zoo::vgg13(10), 300u32), (zoo::svhn_net(), 100)] {
        let ann = evaluate_ann(&model, &ds);
        let snn = evaluate_snn(&model, &ds, t);
        assert!(snn.total_energy() > ann.total_energy());
        let mut last = snn.total_energy();
        // More ANN layers at fewer timesteps → monotonically less energy.
        for (k, tt) in [(1usize, t * 3 / 4), (2, t / 2), (3, t / 3)] {
            let h = evaluate_hybrid(&model, &ds, k, tt.max(1));
            assert!(
                h.total_energy() < last,
                "hybrid energy not monotone at Hyb-{k}"
            );
            last = h.total_energy();
        }
        assert!(ann.total_energy() < last);
    }
}

#[test]
fn fig14_claim_peak_power_gap_is_large() {
    // "ANN peak power consumption can be as high as ≈50× compared to SNN"
    let model = EnergyModel::default();
    let ds = zoo::vgg13(10);
    let ann = evaluate_ann(&model, &ds);
    let snn = evaluate_snn(&model, &ds, 300);
    let max_ratio = ann
        .layers
        .iter()
        .zip(&snn.layers)
        .map(|(a, s)| a.peak_power.0 / s.peak_power.0.max(f64::MIN_POSITIVE))
        .fold(0.0f64, f64::max);
    assert!(
        (10.0..150.0).contains(&max_ratio),
        "max layer peak-power ratio {max_ratio:.1} outside the ~50x regime"
    );
}

#[test]
fn table3_claim_chip_budget() {
    // 5.2 W, 86.729 mm², 113.8/19.66 mW cores.
    assert!((components::chip_power().0 - 5.2).abs() < 0.05);
    assert!((components::chip_area().0 - 86.729).abs() < 0.3);
    assert!((components::ann_core_power().as_mw() - 113.8).abs() < 0.1);
    assert!((components::snn_core_power().as_mw() - 19.66).abs() < 0.05);
}

#[test]
fn fig12_claim_depthwise_layers_save_most() {
    let model = EnergyModel::default();
    let cfg = IsaacConfig::adapted_4bit();
    let ds = zoo::mobilenet_v1(10);
    let (layers, _) = isaac_vs_nebula_ann(&cfg, &model, &ds);
    let dw: Vec<f64> = layers
        .iter()
        .zip(&ds)
        .filter(|(_, d)| d.is_depthwise())
        .map(|(l, _)| l.ratio)
        .collect();
    let pw: Vec<f64> = layers
        .iter()
        .zip(&ds)
        .filter(|(_, d)| !d.is_depthwise())
        .map(|(l, _)| l.ratio)
        .collect();
    let dw_mean = dw.iter().sum::<f64>() / dw.len() as f64;
    let pw_mean = pw.iter().sum::<f64>() / pw.len() as f64;
    assert!(
        dw_mean > pw_mean,
        "depthwise mean {dw_mean:.2} vs pointwise {pw_mean:.2}"
    );
}

#[test]
fn fig13b_claim_fc_layers_save_more_than_deep_convs() {
    let model = EnergyModel::default();
    let ds = zoo::vgg13(10);
    let (layers, _) = inxs_vs_nebula_snn(&InxsConfig::default(), &model, &ds, 300);
    let fc_mean = (layers[10].ratio + layers[11].ratio) / 2.0;
    let conv_mean = (layers[8].ratio + layers[9].ratio) / 2.0;
    assert!(fc_mean > conv_mean);
}

#[test]
fn spill_layers_are_exactly_the_big_receptive_fields() {
    // R_f ≤ 16·M = 2048 stays in-core; bigger spills through the ADC.
    let model = EnergyModel::default();
    for (_, ds) in zoo::all_models() {
        let report = evaluate_ann(&model, &ds);
        for (mapping, desc) in report.mappings.iter().zip(&ds) {
            assert_eq!(
                mapping.needs_adc(),
                desc.receptive_field > 2048,
                "wrong spill decision for {} (R_f = {})",
                desc.name,
                desc.receptive_field
            );
        }
    }
}

#[test]
fn calibration_regression_vgg_headline_numbers() {
    // Pin the calibrated model's headline outputs so refactors cannot
    // silently drift the reproduction (10% tolerance).
    let model = EnergyModel::default();
    let vgg = zoo::vgg13(10);
    let ann = evaluate_ann(&model, &vgg);
    let snn = evaluate_snn(&model, &vgg, 300);
    let close = |x: f64, target: f64| (x / target - 1.0).abs() < 0.10;
    assert!(
        close(ann.total_energy().0, 11.88e-6),
        "ANN energy drifted: {}",
        ann.total_energy()
    );
    assert!(
        close(snn.total_energy().0, 117.7e-6),
        "SNN energy drifted: {}",
        snn.total_energy()
    );
    assert!(
        close(ann.avg_power / snn.avg_power, 10.3),
        "power ratio drifted: {}",
        ann.avg_power / snn.avg_power
    );
}

#[test]
fn report_totals_equal_layer_sums() {
    let model = EnergyModel::default();
    for (_, ds) in zoo::all_models() {
        for report in [evaluate_ann(&model, &ds), evaluate_snn(&model, &ds, 50)] {
            let layer_sum: f64 = report.layers.iter().map(|l| l.energy.total().0).sum();
            let total = report.total_energy().0;
            assert!(
                (layer_sum / total - 1.0).abs() < 1e-9,
                "total {total} != layer sum {layer_sum}"
            );
            assert_eq!(report.layers.len(), ds.len());
        }
    }
}

#[test]
fn zero_timestep_snn_is_degenerate_but_sound() {
    let model = EnergyModel::default();
    let r = evaluate_snn(&model, &zoo::mlp(), 0);
    assert_eq!(r.total_energy().0, 0.0);
    assert!(r.latency.0 >= 0.0);
    assert!(r.avg_power.0.is_finite());
}
