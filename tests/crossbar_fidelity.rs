//! Analog-fidelity integration tests: the circuit-level crossbar must
//! reproduce software arithmetic within quantization error, end to end
//! through the device models.

use nebula::crossbar::{
    kernels_per_supertile, nu_level_for, AtomicCrossbar, CrossbarConfig, Mode, NeuronUnit, NuLevel,
    SuperTile,
};
use nebula::device::params::DeviceParams;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn rng() -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(0xF1DE)
}

/// Quantizes a weight the way the crossbar will (16 levels over
/// [-clip, clip]) so the comparison isolates analog errors.
fn grid(w: f64, clip: f64, levels: usize) -> f64 {
    let step = 2.0 * clip / (levels - 1) as f64;
    ((w.clamp(-clip, clip) + clip) / step).round() * step - clip
}

#[test]
fn full_crossbar_matches_quantized_matmul() {
    let mut r = rng();
    let mut xbar = AtomicCrossbar::new(CrossbarConfig::paper_default(Mode::Ann)).unwrap();
    let (rows, cols) = (128, 128);
    let weights: Vec<Vec<f64>> = (0..rows)
        .map(|_| (0..cols).map(|_| r.gen_range(-1.0..1.0)).collect())
        .collect();
    let inputs: Vec<f64> = (0..rows).map(|_| r.gen_range(0.0..1.0)).collect();
    xbar.program(&weights, 1.0).unwrap();
    let unit = xbar.unit_current().0;
    let out = xbar.dot(&inputs).unwrap();
    for j in (0..cols).step_by(17) {
        let exact: f64 = (0..rows)
            .map(|i| inputs[i] * grid(weights[i][j], 1.0, 16))
            .sum();
        let analog = out[j].0 / unit;
        assert!(
            (analog - exact).abs() < 1e-6 * exact.abs().max(1.0) + 1e-6,
            "col {j}: analog {analog} vs quantized-exact {exact}"
        );
    }
}

#[test]
fn supertile_hierarchy_matches_across_levels() {
    let mut r = rng();
    for rf in [100usize, 300, 900, 2000] {
        let expected_level = nu_level_for(rf, 128).unwrap();
        let mut st = SuperTile::new(CrossbarConfig::paper_default(Mode::Ann)).unwrap();
        let weights: Vec<Vec<f64>> = (0..rf)
            .map(|_| vec![grid(r.gen_range(-1.0..1.0), 1.0, 16)])
            .collect();
        let level = st.program(&weights, 1.0).unwrap();
        assert_eq!(level, expected_level, "wrong NU level for R_f={rf}");
        let inputs: Vec<f64> = (0..rf).map(|_| r.gen_range(0.0..1.0)).collect();
        let exact: f64 = inputs.iter().zip(&weights).map(|(x, w)| x * w[0]).sum();
        let out = st.dot(&inputs).unwrap();
        let analog = out[0].0 / st.unit_current().0;
        assert!(
            (analog - exact).abs() < exact.abs().max(1.0) * 1e-6 + 1e-6,
            "R_f={rf}: analog {analog} vs exact {exact}"
        );
    }
}

#[test]
fn snn_crossbar_drives_if_neurons_at_the_right_rate() {
    // A column summing `k` unit weights driven by always-on spikes must
    // make an IF neuron with threshold `n*k` fire every n timesteps.
    let mut st = SuperTile::new(CrossbarConfig::paper_default(Mode::Snn)).unwrap();
    let k = 40usize;
    st.program(&vec![vec![1.0]; k], 1.0).unwrap();
    let params = DeviceParams::default();
    let n = 3.0;
    let mut nu = NeuronUnit::new_spiking(1, n * k as f64, &params).unwrap();
    let mut fires = 0usize;
    let steps = 30usize;
    for _ in 0..steps {
        let out = st.dot(&vec![1.0; k]).unwrap();
        let value = out[0].0 / st.unit_current().0;
        if nu.process(&[value]).unwrap()[0] > 0.0 {
            fires += 1;
        }
    }
    assert_eq!(
        fires,
        steps / n as usize,
        "expected one spike every {n} steps"
    );
}

#[test]
fn capacity_model_is_self_consistent() {
    // kernels_per_supertile must agree with what program() accepts.
    let m = 128;
    for rf in [64usize, 200, 1000, 2048] {
        let capacity = kernels_per_supertile(rf, m);
        assert!(capacity > 0);
        // One column always fits.
        let mut st = SuperTile::new(CrossbarConfig::paper_default(Mode::Ann)).unwrap();
        assert!(st.program(&vec![vec![0.5]; rf], 1.0).is_ok());
    }
    assert_eq!(kernels_per_supertile(2049, m), 0);
    assert_eq!(nu_level_for(2049, m), None);
    assert_eq!(nu_level_for(64, m), Some(NuLevel::H0));
}

#[test]
fn event_driven_energy_is_zero_for_silent_inputs() {
    let mut st = SuperTile::new(CrossbarConfig::paper_default(Mode::Snn)).unwrap();
    st.program(&vec![vec![1.0]; 256], 1.0).unwrap();
    let before = st.accumulated_read_energy();
    for _ in 0..10 {
        st.dot(&vec![0.0; 256]).unwrap();
    }
    assert_eq!(
        st.accumulated_read_energy(),
        before,
        "silent timesteps must be free"
    );
}
